//! Shared baseline machinery: configuration, reports, interval
//! scheduling, acceptance bookkeeping, and the template-pool mutation the
//! paper uses to feed HillClimbing ("we prepare about 16000 SQL templates
//! as inputs by randomly adding or removing predicates in the SQL
//! templates provided by the benchmarks, the same approach used in
//! LearnedSQLGen").

use minidb::Database;
use rand::rngs::StdRng;
use rand::Rng;
use sqlbarber::cost::CostType;
use sqlbarber::oracle::{CostOracle, PreparedHandle};
use sqlbarber::sampler::PlaceholderSpace;
use sqlkit::{BinaryOp, ColumnRef, Expr, Select, Template, Value};
use std::collections::{HashMap, HashSet};
use std::time::Duration;
use workload::{wasserstein_distance, TargetDistribution};

/// Interval scheduling heuristics (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduling {
    /// Generate from the lowest to the highest cost range.
    Order,
    /// Always work on the cost range with the largest shortfall.
    Priority,
}

impl Scheduling {
    /// Label used in figures, e.g. `order` / `priority`.
    pub fn label(self) -> &'static str {
        match self {
            Scheduling::Order => "order",
            Scheduling::Priority => "priority",
        }
    }
}

/// Baseline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineConfig {
    /// Cost-oracle evaluations allotted per optimization iteration (the
    /// paper gives each iteration a one-hour wall-clock budget; on the
    /// in-memory engine the analogous resource is evaluations).
    pub evals_per_interval: usize,
    /// Number of optimization iterations = number of intervals (paper).
    /// `None` uses the target's interval count.
    pub iterations: Option<usize>,
    pub scheduling: Scheduling,
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            evals_per_interval: 2_000,
            iterations: None,
            scheduling: Scheduling::Priority,
            seed: 7,
        }
    }
}

/// Outcome of a baseline run (mirrors `GenerationReport`'s core fields).
#[derive(Debug, Clone, Default)]
pub struct BaselineReport {
    pub queries: Vec<(String, f64)>,
    /// `(seconds, distance)` samples.
    pub distance_series: Vec<(f64, f64)>,
    pub final_distance: f64,
    pub elapsed: Duration,
    pub distribution: Vec<f64>,
    /// Total cost-oracle evaluations spent.
    pub evaluations: usize,
}

/// Acceptance bookkeeping shared by both baselines: a query is accepted
/// when its interval still has a deficit and its bindings are fresh.
pub(crate) struct Acceptance<'t> {
    pub target: &'t TargetDistribution,
    pub d: Vec<f64>,
    pub queries: Vec<(String, f64)>,
    /// Both baselines "can generate queries for only one cost range per
    /// iteration" (§6.1): while an interval is being optimized, only
    /// queries landing in it are kept. `None` lifts the restriction (used
    /// in tests).
    pub restrict_to: Option<usize>,
    seen: HashSet<String>,
}

impl<'t> Acceptance<'t> {
    pub fn new(target: &'t TargetDistribution, _n_templates: usize) -> Self {
        Acceptance {
            target,
            d: vec![0.0; target.intervals.count],
            queries: Vec::new(),
            restrict_to: None,
            seen: HashSet::new(),
        }
    }

    /// Accept a query when its interval has a deficit (and is the active
    /// interval, if restricted) and its SQL text is new.
    pub fn try_accept(
        &mut self,
        _template_idx: usize,
        _point: &[f64],
        sql: String,
        cost: f64,
    ) -> bool {
        let Some(j) = self.target.intervals.interval_of(cost) else { return false };
        if let Some(active) = self.restrict_to {
            if j != active {
                return false;
            }
        }
        if self.d[j] >= self.target.counts[j] {
            return false;
        }
        if self.seen.contains(&sql) {
            return false;
        }
        self.seen.insert(sql.clone());
        self.d[j] += 1.0;
        self.queries.push((sql, cost));
        true
    }

    /// Cost-only prefix of [`Acceptance::try_accept`]: does this cost land
    /// in an interval that still has a deficit (and is the active one, if
    /// restricted)? Lets callers skip instantiating and rendering SQL for
    /// probes that can never be accepted.
    pub fn would_consider(&self, cost: f64) -> bool {
        let Some(j) = self.target.intervals.interval_of(cost) else { return false };
        if let Some(active) = self.restrict_to {
            if j != active {
                return false;
            }
        }
        self.d[j] < self.target.counts[j]
    }

    pub fn distance(&self) -> f64 {
        wasserstein_distance(&self.target.counts, &self.d, self.target.intervals.width())
    }

    pub fn deficit(&self, j: usize) -> f64 {
        self.target.counts[j] - self.d[j]
    }
}

/// Decode a point and cost it — through the prepared plan skeleton when
/// one is available, falling back to render-and-memoize otherwise.
/// Returns the bindings (so the caller can defer SQL rendering until
/// [`Acceptance::would_consider`] says the probe is worth keeping) and
/// the cost.
///
/// Both baselines probe one point at a time on purpose: hill climbing
/// must see a probe's cost before choosing the next neighbour, and
/// Q-learning must observe the reward before the next action, so their
/// loops are sequentially dependent and cannot form the binding batches
/// the oracle's columnar path consumes. They still ride its supporting
/// work — inline binding keys make each `cost_prepared` memo lookup
/// allocation-free, and `would_consider` defers SQL rendering exactly
/// like the scheduler's batched path does.
pub(crate) fn evaluate(
    oracle: &CostOracle,
    entry: &PooledTemplate,
    prepared: Option<&PreparedHandle>,
    point: &[f64],
    cost_type: CostType,
) -> Option<(HashMap<u32, Value>, f64)> {
    let bindings = entry.space.decode(point);
    let cost = match prepared {
        Some(handle) => oracle.cost_prepared(handle, &bindings, cost_type).ok()?,
        None => {
            let query = entry.template.instantiate(&bindings).ok()?;
            // Render once: the SQL text doubles as the memo-cache key.
            let sql = query.to_string();
            oracle.cost_rendered(&sql, &query, cost_type).ok()?
        }
    };
    Some((bindings, cost))
}

/// Render-on-demand acceptance: instantiate and render the SQL only when
/// the cost alone says the query could still be accepted.
pub(crate) fn accept_costed(
    acceptance: &mut Acceptance<'_>,
    template_idx: usize,
    point: &[f64],
    entry: &PooledTemplate,
    bindings: &HashMap<u32, Value>,
    cost: f64,
) -> bool {
    if !acceptance.would_consider(cost) {
        return false;
    }
    let Ok(query) = entry.template.instantiate(bindings) else { return false };
    acceptance.try_accept(template_idx, point, query.to_string(), cost)
}

/// Pick the next interval to optimize under a scheduling heuristic.
/// `round` indexes the optimization iteration (0-based).
pub(crate) fn schedule_interval(
    scheduling: Scheduling,
    round: usize,
    acceptance: &Acceptance<'_>,
) -> usize {
    let n = acceptance.target.intervals.count;
    match scheduling {
        Scheduling::Order => round % n,
        Scheduling::Priority => (0..n)
            .max_by(|&a, &b| acceptance.deficit(a).total_cmp(&acceptance.deficit(b)))
            .unwrap_or(0),
    }
}

/// A baseline-ready template: parsed SQL plus its predicate space.
#[derive(Debug, Clone)]
pub struct PooledTemplate {
    pub template: Template,
    pub space: PlaceholderSpace,
}

/// Expand seed templates into a large pool by randomly adding or removing
/// predicates (§6.1's input-preparation step for HillClimbing).
pub fn mutate_template_pool(
    db: &Database,
    seeds: &[Template],
    pool_size: usize,
    rng: &mut StdRng,
) -> Vec<PooledTemplate> {
    let mut pool: Vec<PooledTemplate> = Vec::with_capacity(pool_size);
    for template in seeds {
        pool.push(PooledTemplate {
            space: PlaceholderSpace::build(db, template),
            template: template.clone(),
        });
    }
    if seeds.is_empty() {
        return pool;
    }
    let mut attempts = 0;
    while pool.len() < pool_size && attempts < pool_size * 4 {
        attempts += 1;
        let base = &seeds[rng.gen_range(0..seeds.len())];
        let mut select = base.select().clone();
        if rng.gen_bool(0.5) {
            add_random_predicate(db, &mut select, rng);
        } else {
            remove_random_predicate(&mut select);
        }
        let template = Template::new(select);
        if db.validate_template(&template).is_err() {
            continue;
        }
        let space = PlaceholderSpace::build(db, &template);
        pool.push(PooledTemplate { template, space });
    }
    pool
}

fn add_random_predicate(db: &Database, select: &mut Select, rng: &mut StdRng) {
    // Pick a numeric column from a bound table.
    let bindings: Vec<(String, String)> = select
        .table_refs()
        .iter()
        .map(|t| (t.binding().to_string(), t.table.clone()))
        .collect();
    if bindings.is_empty() {
        return;
    }
    let (alias, table) = bindings[rng.gen_range(0..bindings.len())].clone();
    let Ok(schema) = db.schema(&table) else { return };
    let numeric: Vec<&str> = schema
        .columns
        .iter()
        .filter(|c| matches!(c.data_type, minidb::DataType::Int | minidb::DataType::Float))
        .map(|c| c.name.as_str())
        .collect();
    if numeric.is_empty() {
        return;
    }
    let column = numeric[rng.gen_range(0..numeric.len())].to_string();
    let next_id = Template::new(select.clone())
        .placeholders()
        .into_iter()
        .max()
        .unwrap_or(0)
        + 1;
    let op = [BinaryOp::Gt, BinaryOp::Lt, BinaryOp::GtEq, BinaryOp::LtEq]
        [rng.gen_range(0..4)];
    let predicate = Expr::binary(
        Expr::Column(ColumnRef::qualified(alias, column)),
        op,
        Expr::Placeholder(next_id),
    );
    select.where_clause = Some(Expr::and_opt(select.where_clause.take(), predicate));
}

fn remove_random_predicate(select: &mut Select) {
    let Some(where_clause) = select.where_clause.take() else { return };
    let mut parts = conjuncts(&where_clause);
    if parts.len() > 1 {
        parts.remove(0);
    }
    select.where_clause =
        parts.into_iter().fold(None, |acc, c| Some(Expr::and_opt(acc, c)));
}

fn conjuncts(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Binary { left, op: BinaryOp::And, right } => {
            let mut parts = conjuncts(left);
            parts.extend(conjuncts(right));
            parts
        }
        other => vec![other.clone()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sqlkit::parse_template;
    use workload::CostIntervals;

    fn tpch() -> Database {
        minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
    }

    #[test]
    fn pool_mutation_grows_and_stays_valid() {
        let db = tpch();
        let seeds = vec![
            parse_template(
                "SELECT l.l_orderkey FROM lineitem AS l WHERE l.l_quantity > {p_1}",
            )
            .unwrap(),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        let pool = mutate_template_pool(&db, &seeds, 50, &mut rng);
        assert!(pool.len() >= 40, "pool size {}", pool.len());
        for entry in &pool {
            db.validate_template(&entry.template).unwrap();
        }
        // mutations actually vary arity
        let arities: std::collections::BTreeSet<usize> =
            pool.iter().map(|p| p.space.arity()).collect();
        assert!(arities.len() >= 2, "arities {arities:?}");
    }

    #[test]
    fn acceptance_respects_deficits_and_uniqueness() {
        let target =
            TargetDistribution::uniform(CostIntervals::new(0.0, 100.0, 2), 2);
        let mut acceptance = Acceptance::new(&target, 1);
        assert!(acceptance.try_accept(0, &[0.1], "q1".into(), 10.0));
        // duplicate point rejected
        assert!(!acceptance.try_accept(0, &[0.1], "q1".into(), 10.0));
        // interval 0 full (target 1 per interval)
        assert!(!acceptance.try_accept(0, &[0.2], "q2".into(), 20.0));
        // out of range rejected
        assert!(!acceptance.try_accept(0, &[0.3], "q3".into(), 999.0));
        assert!(acceptance.try_accept(0, &[0.4], "q4".into(), 60.0));
        assert_eq!(acceptance.distance(), 0.0);
    }

    #[test]
    fn would_consider_mirrors_try_accept_cost_gates() {
        let target =
            TargetDistribution::uniform(CostIntervals::new(0.0, 100.0, 2), 2);
        let mut acceptance = Acceptance::new(&target, 1);
        assert!(acceptance.would_consider(10.0));
        assert!(!acceptance.would_consider(999.0), "out of range");
        acceptance.restrict_to = Some(1);
        assert!(!acceptance.would_consider(10.0), "wrong active interval");
        assert!(acceptance.would_consider(60.0));
        acceptance.restrict_to = None;
        acceptance.try_accept(0, &[0.1], "q1".into(), 10.0);
        assert!(!acceptance.would_consider(20.0), "interval 0 already full");
    }

    #[test]
    fn scheduling_heuristics_differ() {
        let target =
            TargetDistribution::uniform(CostIntervals::new(0.0, 100.0, 4), 8);
        let mut acceptance = Acceptance::new(&target, 1);
        // fill interval 0 fully, leave 1..3 empty
        acceptance.try_accept(0, &[0.0], "a".into(), 1.0);
        acceptance.try_accept(0, &[0.01], "b".into(), 2.0);
        assert_eq!(schedule_interval(Scheduling::Order, 0, &acceptance), 0);
        assert_eq!(schedule_interval(Scheduling::Order, 2, &acceptance), 2);
        let prioritized = schedule_interval(Scheduling::Priority, 0, &acceptance);
        assert_ne!(prioritized, 0, "priority must pick a deficit interval");
    }
}
