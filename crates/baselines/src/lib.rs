//! # baselines — the paper's comparison systems
//!
//! SQLBarber's evaluation (§6.1) compares against two state-of-the-art
//! SQL generators, each run under two interval-scheduling heuristics:
//!
//! * [`hill_climbing`] — **HillClimbing** (Bruno, Chaudhuri & Thomas,
//!   TKDE 2006): takes a large pool of SQL templates as input (the paper
//!   prepares ~16 000 by randomly adding/removing predicates from the
//!   benchmark templates) and greedily tweaks predicate values toward a
//!   cardinality/cost target with step adaptation;
//! * [`learned_sqlgen`] — **LearnedSQLGen** (Zhang et al., SIGMOD 2022):
//!   reinforcement learning (here tabular Q-learning — the published
//!   system's sample-hungry trial-and-error behaviour without its GPU
//!   appendage) over template choice and predicate adjustment actions.
//!
//! Both generate queries *per cost interval*; [`common::Scheduling`]
//! implements the paper's two heuristics: `Order` (lowest interval first)
//! and `Priority` (largest deficit first). Neither system can create or
//! adapt templates, which is exactly the limitation the paper's
//! experiments surface.

pub mod common;
pub mod hill_climbing;
pub mod learned_sqlgen;

pub use common::{mutate_template_pool, BaselineConfig, BaselineReport, Scheduling};
pub use hill_climbing::HillClimbing;
pub use learned_sqlgen::LearnedSqlGen;
