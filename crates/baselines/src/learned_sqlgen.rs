//! LearnedSQLGen baseline (Zhang et al., SIGMOD 2022).
//!
//! Constraint-aware SQL generation with reinforcement learning: an agent
//! repeatedly instantiates templates and adjusts predicate values, getting
//! rewarded for landing in the target cost range. The published system
//! trains neural policies on GPUs; this reimplementation uses tabular
//! Q-learning over a discretized cost-ratio state space, which preserves
//! the algorithm's defining property for the paper's comparison — it
//! "requires a large number of samples … to capture the relationship
//! among query cost, SQL templates, and predicate values" (§6.2).

use crate::common::{
    accept_costed, evaluate, schedule_interval, Acceptance, BaselineConfig,
    BaselineReport, PooledTemplate,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlbarber::bo_search::interval_objective;
use sqlbarber::cost::CostType;
use sqlbarber::oracle::{CostOracle, PreparedHandle};
use std::collections::HashMap;
use std::time::Instant;
use workload::TargetDistribution;

/// Q-learning hyperparameters.
const ALPHA: f64 = 0.3;
const GAMMA: f64 = 0.9;
const EPSILON: f64 = 0.2;
const MAX_EPISODE_STEPS: usize = 25;

/// Predicate-adjustment actions on the unit hypercube.
const ACTIONS: [f64; 4] = [0.2, 0.05, -0.05, -0.2];

/// The LearnedSQLGen generator.
pub struct LearnedSqlGen {
    config: BaselineConfig,
    pool: Vec<PooledTemplate>,
    rng: StdRng,
    /// Q[(template, state, action)].
    q_table: HashMap<(usize, i8, usize), f64>,
    /// Running value of each template for the current interval (used for
    /// ε-greedy template selection).
    template_value: Vec<f64>,
}

impl LearnedSqlGen {
    /// New generator over a template pool.
    pub fn new(config: BaselineConfig, pool: Vec<PooledTemplate>) -> LearnedSqlGen {
        let rng = StdRng::seed_from_u64(config.seed ^ 0x51_0a9e);
        let template_value = vec![0.0; pool.len()];
        LearnedSqlGen { config, pool, rng, q_table: HashMap::new(), template_value }
    }

    /// Discretized state: log₂ of the cost-to-interval-center ratio,
    /// clamped to [-4, 4]; `i8::MIN` for failed evaluations.
    fn state_of(cost: f64, center: f64) -> i8 {
        if cost <= 0.0 || center <= 0.0 {
            return 0;
        }
        (cost / center).log2().clamp(-4.0, 4.0).round() as i8
    }

    fn best_action(&self, template: usize, state: i8) -> (usize, f64) {
        let mut best = (0usize, f64::NEG_INFINITY);
        for action in 0..ACTIONS.len() {
            let q = *self.q_table.get(&(template, state, action)).unwrap_or(&0.0);
            if q > best.1 {
                best = (action, q);
            }
        }
        best
    }

    /// Generate a workload toward the target distribution.
    pub fn generate(
        &mut self,
        oracle: &CostOracle,
        target: &TargetDistribution,
        cost_type: CostType,
    ) -> BaselineReport {
        // detlint::allow(ambient_nondet): baseline wall-time is reporting-only
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let mut acceptance = Acceptance::new(target, self.pool.len());
        let mut report = BaselineReport::default();
        if self.pool.is_empty() {
            report.final_distance = acceptance.distance();
            report.distribution = acceptance.d.clone();
            return report;
        }

        // Plan every pool template once up front; each probe afterwards
        // only re-costs the cached skeleton for its bindings.
        let prepared: Vec<Option<PreparedHandle>> =
            self.pool.iter().map(|e| oracle.prepare(&e.template).ok()).collect();

        let iterations = self.config.iterations.unwrap_or(target.intervals.count);
        for round in 0..iterations {
            let j = schedule_interval(self.config.scheduling, round, &acceptance);
            acceptance.restrict_to = Some(j);
            let (lo, hi) = target.intervals.bounds(j);
            let center = (lo + hi) / 2.0;
            let mut budget = self.config.evals_per_interval;
            self.template_value.iter_mut().for_each(|v| *v = 0.0);

            while budget > 0 && acceptance.deficit(j) > 0.0 {
                // ε-greedy template selection by learned value.
                let template_idx = if self.rng.gen::<f64>() < EPSILON {
                    self.rng.gen_range(0..self.pool.len())
                } else {
                    self.template_value
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(idx, _)| idx)
                        .unwrap_or(0)
                };
                let arity = self.pool[template_idx].space.arity();
                let mut point: Vec<f64> =
                    (0..arity.max(1)).map(|_| self.rng.gen::<f64>()).collect();
                if arity == 0 {
                    point.clear();
                }

                // One episode.
                let mut episode_reward = 0.0;
                let mut previous: Option<(i8, usize)> = None;
                for _step in 0..MAX_EPISODE_STEPS {
                    if budget == 0 {
                        break;
                    }
                    budget -= 1;
                    report.evaluations += 1;
                    let entry = &self.pool[template_idx];
                    let Some((bindings, cost)) = evaluate(
                        oracle,
                        entry,
                        prepared[template_idx].as_ref(),
                        &point,
                        cost_type,
                    ) else {
                        break;
                    };
                    accept_costed(
                        &mut acceptance,
                        template_idx,
                        &point,
                        entry,
                        &bindings,
                        cost,
                    );
                    let reward = 1.0 - interval_objective(cost, lo, hi);
                    episode_reward += reward;
                    let state = Self::state_of(cost, center);

                    // Q-update for the transition that led here.
                    if let Some((prev_state, prev_action)) = previous {
                        let (_, future) = self.best_action(template_idx, state);
                        let entry = self
                            .q_table
                            .entry((template_idx, prev_state, prev_action))
                            .or_insert(0.0);
                        *entry += ALPHA * (reward + GAMMA * future - *entry);
                    }

                    if reward >= 1.0 {
                        // In the interval: jitter to harvest distinct
                        // conforming queries, episode keeps going.
                        if arity > 0 {
                            let dim = self.rng.gen_range(0..arity);
                            point[dim] = (point[dim]
                                + self.rng.gen_range(-0.04..0.04))
                            .clamp(0.0, 1.0);
                        } else {
                            break;
                        }
                        previous = None;
                        continue;
                    }
                    if arity == 0 {
                        break; // nothing to adjust
                    }

                    // Choose the next adjustment ε-greedily.
                    let action = if self.rng.gen::<f64>() < EPSILON {
                        self.rng.gen_range(0..ACTIONS.len())
                    } else {
                        self.best_action(template_idx, state).0
                    };
                    let dim = self.rng.gen_range(0..arity);
                    point[dim] = (point[dim] + ACTIONS[action]).clamp(0.0, 1.0);
                    previous = Some((state, action));
                }
                self.template_value[template_idx] = 0.8
                    * self.template_value[template_idx]
                    + 0.2 * episode_reward / MAX_EPISODE_STEPS as f64;
                report
                    .distance_series
                    .push((start.elapsed().as_secs_f64(), acceptance.distance()));
            }
        }

        report.final_distance = acceptance.distance();
        report.distribution = acceptance.d.clone();
        report.queries = acceptance.queries;
        report.elapsed = start.elapsed();
        report
            .distance_series
            .push((report.elapsed.as_secs_f64(), report.final_distance));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::mutate_template_pool;
    use minidb::Database;
    use sqlkit::parse_template;
    use workload::CostIntervals;

    fn tpch() -> Database {
        minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
    }

    #[test]
    fn rl_fills_reachable_intervals_with_many_samples() {
        let db = tpch();
        let mut rng = StdRng::seed_from_u64(6);
        let seeds = vec![parse_template(
            "SELECT l.l_orderkey FROM lineitem AS l WHERE l.l_extendedprice > {p_1}",
        )
        .unwrap()];
        let pool = mutate_template_pool(&db, &seeds, 20, &mut rng);
        let target = TargetDistribution::uniform(
            CostIntervals::new(0.0, 6000.0, 3),
            24,
        );
        let oracle = CostOracle::new(&db, 1);
        let mut agent = LearnedSqlGen::new(
            BaselineConfig { evals_per_interval: 1500, ..Default::default() },
            pool,
        );
        let report = agent.generate(&oracle, &target, CostType::Cardinality);
        let filled: f64 = report.distribution.iter().sum();
        assert!(filled >= 16.0, "filled {filled} — d {:?}", report.distribution);
        assert!(report.evaluations > 50);
    }

    #[test]
    fn state_discretization_is_bounded() {
        assert_eq!(LearnedSqlGen::state_of(100.0, 100.0), 0);
        assert_eq!(LearnedSqlGen::state_of(400.0, 100.0), 2);
        assert_eq!(LearnedSqlGen::state_of(1e9, 100.0), 4);
        assert_eq!(LearnedSqlGen::state_of(0.001, 100.0), -4);
        assert_eq!(LearnedSqlGen::state_of(0.0, 100.0), 0);
    }

    #[test]
    fn q_table_learns_something() {
        let db = tpch();
        let mut rng = StdRng::seed_from_u64(9);
        let seeds = vec![parse_template(
            "SELECT o.o_orderkey FROM orders AS o WHERE o.o_totalprice > {p_1}",
        )
        .unwrap()];
        let pool = mutate_template_pool(&db, &seeds, 10, &mut rng);
        let target = TargetDistribution::uniform(
            CostIntervals::new(0.0, 1500.0, 3),
            12,
        );
        let oracle = CostOracle::new(&db, 1);
        let mut agent = LearnedSqlGen::new(
            BaselineConfig { evals_per_interval: 600, ..Default::default() },
            pool,
        );
        agent.generate(&oracle, &target, CostType::Cardinality);
        assert!(!agent.q_table.is_empty(), "no Q updates happened");
        assert!(agent.q_table.values().any(|&q| q != 0.0));
    }
}
