//! HillClimbing baseline (Bruno, Chaudhuri & Thomas, TKDE 2006).
//!
//! Takes a fixed pool of SQL templates and, per cost interval, greedily
//! tweaks predicate values: from a random starting assignment, one
//! dimension at a time is nudged in the direction that reduces the
//! distance between the query's cost and the target interval, with the
//! step size halving after failed moves (the paper's "heuristics to
//! greedily tweak the predicate values"). The method's ceiling is the
//! input pool: it can neither create templates for uncovered cost ranges
//! nor reason across intervals — the limitation §6.2 surfaces.

use crate::common::{
    accept_costed, evaluate, schedule_interval, Acceptance, BaselineConfig,
    BaselineReport, PooledTemplate,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlbarber::bo_search::interval_objective;
use sqlbarber::cost::CostType;
use sqlbarber::oracle::{CostOracle, PreparedHandle};
use std::time::Instant;
use workload::TargetDistribution;

/// Maximum hill-climbing steps per episode before restarting.
const MAX_STEPS: usize = 30;

/// The HillClimbing generator.
pub struct HillClimbing {
    config: BaselineConfig,
    pool: Vec<PooledTemplate>,
    rng: StdRng,
}

impl HillClimbing {
    /// New generator over a prepared template pool (see
    /// [`crate::common::mutate_template_pool`]).
    pub fn new(config: BaselineConfig, pool: Vec<PooledTemplate>) -> HillClimbing {
        let rng = StdRng::seed_from_u64(config.seed);
        HillClimbing { config, pool, rng }
    }

    /// Generate a workload toward the target distribution.
    pub fn generate(
        &mut self,
        oracle: &CostOracle,
        target: &TargetDistribution,
        cost_type: CostType,
    ) -> BaselineReport {
        // detlint::allow(ambient_nondet): baseline wall-time is reporting-only
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let mut acceptance = Acceptance::new(target, self.pool.len());
        let mut report = BaselineReport::default();
        if self.pool.is_empty() {
            report.final_distance = acceptance.distance();
            report.distribution = acceptance.d.clone();
            return report;
        }

        // Plan every pool template once up front; each probe afterwards
        // only re-costs the cached skeleton for its bindings.
        let prepared: Vec<Option<PreparedHandle>> =
            self.pool.iter().map(|e| oracle.prepare(&e.template).ok()).collect();

        let iterations = self.config.iterations.unwrap_or(target.intervals.count);
        for round in 0..iterations {
            let j = schedule_interval(self.config.scheduling, round, &acceptance);
            acceptance.restrict_to = Some(j);
            let (lo, hi) = target.intervals.bounds(j);
            let mut budget = self.config.evals_per_interval;

            while budget > 0 && acceptance.deficit(j) > 0.0 {
                // One greedy episode on a random template.
                let template_idx = self.rng.gen_range(0..self.pool.len());
                let arity = self.pool[template_idx].space.arity();
                if arity == 0 {
                    // ground template: single evaluation
                    let entry = &self.pool[template_idx];
                    budget = budget.saturating_sub(1);
                    if let Some((bindings, cost)) = evaluate(
                        oracle,
                        entry,
                        prepared[template_idx].as_ref(),
                        &[],
                        cost_type,
                    ) {
                        report.evaluations += 1;
                        accept_costed(
                            &mut acceptance,
                            template_idx,
                            &[],
                            entry,
                            &bindings,
                            cost,
                        );
                    }
                    continue;
                }

                let mut point: Vec<f64> =
                    (0..arity).map(|_| self.rng.gen::<f64>()).collect();
                let mut step = 0.25;
                let mut best = f64::INFINITY;
                for _ in 0..MAX_STEPS {
                    if budget == 0 {
                        break;
                    }
                    budget -= 1;
                    report.evaluations += 1;
                    let entry = &self.pool[template_idx];
                    let Some((bindings, cost)) = evaluate(
                        oracle,
                        entry,
                        prepared[template_idx].as_ref(),
                        &point,
                        cost_type,
                    ) else {
                        break;
                    };
                    accept_costed(
                        &mut acceptance,
                        template_idx,
                        &point,
                        entry,
                        &bindings,
                        cost,
                    );
                    let objective = interval_objective(cost, lo, hi);
                    if objective == 0.0 {
                        // Inside the interval: restart nearby to harvest
                        // more distinct conforming queries.
                        let dim = self.rng.gen_range(0..arity);
                        point[dim] =
                            (point[dim] + self.rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0);
                        continue;
                    }
                    if objective < best {
                        best = objective;
                    } else {
                        step /= 2.0;
                        if step < 1e-3 {
                            break; // converged away from the interval
                        }
                    }
                    // Greedy move on one dimension.
                    let dim = self.rng.gen_range(0..arity);
                    let direction = if self.rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                    point[dim] = (point[dim] + direction * step).clamp(0.0, 1.0);
                }
                report
                    .distance_series
                    .push((start.elapsed().as_secs_f64(), acceptance.distance()));
            }
        }

        report.final_distance = acceptance.distance();
        report.distribution = acceptance.d.clone();
        report.queries = acceptance.queries;
        report.elapsed = start.elapsed();
        report
            .distance_series
            .push((report.elapsed.as_secs_f64(), report.final_distance));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::mutate_template_pool;
    use minidb::Database;
    use sqlkit::parse_template;
    use workload::CostIntervals;

    fn tpch() -> Database {
        minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
    }

    fn seed_pool(db: &Database, rng: &mut StdRng) -> Vec<PooledTemplate> {
        let seeds = vec![
            parse_template(
                "SELECT l.l_orderkey FROM lineitem AS l WHERE l.l_extendedprice > {p_1}",
            )
            .unwrap(),
            parse_template(
                "SELECT o.o_orderkey FROM orders AS o WHERE o.o_totalprice > {p_1}",
            )
            .unwrap(),
        ];
        mutate_template_pool(db, &seeds, 30, rng)
    }

    #[test]
    fn fills_easy_intervals_but_is_eval_hungry() {
        let db = tpch();
        let mut rng = StdRng::seed_from_u64(3);
        let pool = seed_pool(&db, &mut rng);
        let target = TargetDistribution::uniform(
            CostIntervals::new(0.0, 6000.0, 3),
            30,
        );
        let oracle = CostOracle::new(&db, 1);
        let mut hc = HillClimbing::new(
            BaselineConfig { evals_per_interval: 1500, ..Default::default() },
            pool,
        );
        let report = hc.generate(&oracle, &target, CostType::Cardinality);
        let filled: f64 = report.distribution.iter().sum();
        assert!(filled >= 20.0, "filled {filled} — d {:?}", report.distribution);
        assert!(report.evaluations > 100, "suspiciously cheap: {}", report.evaluations);
        // distance never increases along the series
        let distances: Vec<f64> = report.distance_series.iter().map(|p| p.1).collect();
        assert!(distances.windows(2).all(|w| w[1] <= w[0] + 1e-9));
    }

    #[test]
    fn order_and_priority_differ_in_behaviour() {
        let db = tpch();
        let mut rng = StdRng::seed_from_u64(4);
        let pool = seed_pool(&db, &mut rng);
        let target = TargetDistribution::uniform(
            CostIntervals::new(0.0, 6000.0, 3),
            60,
        );
        let run = |scheduling| {
            let mut hc = HillClimbing::new(
                BaselineConfig {
                    evals_per_interval: 400,
                    scheduling,
                    iterations: Some(2), // fewer rounds than intervals
                    ..Default::default()
                },
                seed_pool(&db, &mut StdRng::seed_from_u64(4)),
            );
            let oracle = CostOracle::new(&db, 1);
            hc.generate(&oracle, &target, CostType::Cardinality)
        };
        let order = run(crate::Scheduling::Order);
        let priority = run(crate::Scheduling::Priority);
        // The two heuristics walk different interval sequences, so the
        // accepted query streams differ even when both eventually fill
        // every interval opportunistically.
        assert_ne!(order.queries, priority.queries);
        assert!(order.final_distance >= 0.0 && priority.final_distance >= 0.0);
        let _ = pool;
    }

    #[test]
    fn empty_pool_returns_gracefully() {
        let db = tpch();
        let target =
            TargetDistribution::uniform(CostIntervals::paper_default(5), 10);
        let oracle = CostOracle::new(&db, 1);
        let mut hc = HillClimbing::new(BaselineConfig::default(), Vec::new());
        let report = hc.generate(&oracle, &target, CostType::Cardinality);
        assert!(report.queries.is_empty());
        assert!(report.final_distance > 0.0);
    }
}
