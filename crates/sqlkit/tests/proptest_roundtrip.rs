//! Property tests for the SQL frontend.
//!
//! The central invariant is `parse(print(ast)) == ast` for every AST the
//! SQLBarber generators can construct. The strategies below generate trees
//! respecting the grammar's shape rules (e.g. comparison operands are
//! additive-level expressions, literals are non-negative with negation
//! expressed via unary minus), which mirrors exactly what the template
//! generator and the synthetic LLM emit.

use proptest::prelude::*;
use sqlkit::{
    parse_select, BinaryOp, ColumnRef, Expr, Join, JoinKind, OrderByItem, Select, SelectItem,
    TableRef, UnaryOp, Value,
};

fn ident() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "t0", "t1", "users", "orders", "lineitem", "col_a", "col_b", "amount", "qty", "price",
    ])
    .prop_map(str::to_string)
}

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..1_000_000).prop_map(|v| Expr::Literal(Value::Int(v))),
        (0.0f64..1e6).prop_map(|v| Expr::Literal(Value::Float(v))),
        "[a-z ']{0,12}".prop_map(|s| Expr::Literal(Value::Str(s))),
        Just(Expr::Literal(Value::Null)),
        Just(Expr::Literal(Value::Bool(true))),
        Just(Expr::Literal(Value::Bool(false))),
    ]
}

fn leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (ident(), ident()).prop_map(|(t, c)| Expr::Column(ColumnRef::qualified(t, c))),
        ident().prop_map(|c| Expr::Column(ColumnRef::bare(c))),
        literal(),
        (1u32..8).prop_map(Expr::Placeholder),
    ]
}

/// Arithmetic expressions (additive/multiplicative levels of the grammar).
fn arith() -> impl Strategy<Value = Expr> {
    leaf().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arith_op()).prop_map(|(l, r, op)| Expr::binary(l, op, r)),
            inner
                .clone()
                .prop_map(|e| Expr::Unary { op: UnaryOp::Neg, expr: Box::new(e) }),
            (
                prop::sample::select(vec!["ABS", "ROUND", "LENGTH", "COALESCE"]),
                prop::collection::vec(inner, 1..3)
            )
                .prop_map(|(name, args)| Expr::Function {
                    name: name.into(),
                    distinct: false,
                    args,
                }),
        ]
    })
}

fn arith_op() -> impl Strategy<Value = BinaryOp> {
    prop::sample::select(vec![
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::Mul,
        BinaryOp::Div,
        BinaryOp::Mod,
    ])
}

fn comparison_op() -> impl Strategy<Value = BinaryOp> {
    prop::sample::select(vec![
        BinaryOp::Eq,
        BinaryOp::NotEq,
        BinaryOp::Lt,
        BinaryOp::LtEq,
        BinaryOp::Gt,
        BinaryOp::GtEq,
    ])
}

/// Leaf predicates (comparison level of the grammar).
fn predicate() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (arith(), comparison_op(), arith()).prop_map(|(l, op, r)| Expr::binary(l, op, r)),
        (arith(), any::<bool>(), arith(), arith()).prop_map(|(e, negated, lo, hi)| {
            Expr::Between {
                expr: Box::new(e),
                negated,
                low: Box::new(lo),
                high: Box::new(hi),
            }
        }),
        (arith(), any::<bool>(), prop::collection::vec(literal(), 1..4)).prop_map(
            |(e, negated, list)| Expr::InList { expr: Box::new(e), negated, list }
        ),
        (ident(), ident(), any::<bool>(), "[a-z%_]{1,8}").prop_map(|(t, c, negated, pat)| {
            Expr::Like {
                expr: Box::new(Expr::Column(ColumnRef::qualified(t, c))),
                negated,
                pattern: Box::new(Expr::Literal(Value::Str(pat))),
            }
        }),
        (arith(), any::<bool>())
            .prop_map(|(e, negated)| Expr::IsNull { expr: Box::new(e), negated }),
    ]
}

/// Boolean combinations (AND/OR/NOT levels of the grammar).
fn bool_expr() -> impl Strategy<Value = Expr> {
    predicate().prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::binary(l, BinaryOp::And, r)),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::binary(l, BinaryOp::Or, r)),
            inner.prop_map(|e| Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) }),
        ]
    })
}

fn select_strategy() -> impl Strategy<Value = Select> {
    (
        prop::collection::vec(arith(), 1..4),
        ident(),
        prop::option::of(ident()),
        prop::collection::vec((ident(), predicate()), 0..3),
        prop::option::of(bool_expr()),
        prop::collection::vec((ident(), ident()), 0..2),
        prop::option::of(predicate()),
        prop::collection::vec((arith(), any::<bool>()), 0..2),
        prop::option::of(0u64..1000),
        any::<bool>(),
    )
        .prop_map(
            |(
                proj_exprs,
                from_table,
                from_alias,
                join_specs,
                where_clause,
                group_cols,
                having,
                order_specs,
                limit,
                distinct,
            )| {
                let projections = proj_exprs
                    .into_iter()
                    .map(|expr| SelectItem { expr, alias: None })
                    .collect();
                let joins = join_specs
                    .into_iter()
                    .map(|(table, on)| Join {
                        kind: JoinKind::Inner,
                        table: TableRef::new(table),
                        on: Some(on),
                    })
                    .collect();
                let group_by: Vec<Expr> = group_cols
                    .into_iter()
                    .map(|(t, c)| Expr::Column(ColumnRef::qualified(t, c)))
                    .collect();
                let having = if group_by.is_empty() { None } else { having };
                let order_by = order_specs
                    .into_iter()
                    .map(|(expr, ascending)| OrderByItem { expr, ascending })
                    .collect();
                Select {
                    distinct,
                    projections,
                    from: Some(TableRef { table: from_table, alias: from_alias }),
                    joins,
                    where_clause,
                    group_by,
                    having,
                    order_by,
                    limit,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse is the identity on generator-shaped ASTs.
    #[test]
    fn print_parse_round_trip(select in select_strategy()) {
        let printed = select.to_string();
        let reparsed = parse_select(&printed)
            .unwrap_or_else(|e| panic!("printed SQL failed to parse: {printed}\n{e}"));
        prop_assert_eq!(select, reparsed, "text was: {}", printed);
    }

    /// Printing is deterministic and stable under one round trip.
    #[test]
    fn printing_is_idempotent(select in select_strategy()) {
        let once = select.to_string();
        let twice = parse_select(&once).unwrap().to_string();
        prop_assert_eq!(once, twice);
    }

    /// Feature extraction never panics and placeholder counts match the
    /// template view.
    #[test]
    fn features_are_consistent_with_placeholders(select in select_strategy()) {
        let template = sqlkit::Template::new(select);
        let features = template.features();
        prop_assert_eq!(features.num_placeholders as usize, template.placeholders().len());
    }

    /// Instantiating with a full binding eliminates every placeholder.
    #[test]
    fn instantiation_grounds_the_template(select in select_strategy(), v in 0i64..1000) {
        let template = sqlkit::Template::new(select);
        let bindings = template
            .placeholders()
            .into_iter()
            .map(|id| (id, Value::Int(v)))
            .collect();
        let query = template.instantiate(&bindings).unwrap();
        let grounded = sqlkit::Template::new(query);
        prop_assert!(grounded.is_ground());
    }
}
