//! Error types for the SQL frontend.
//!
//! Parse errors carry byte positions and a human-readable message; the
//! message text is what SQLBarber's check-and-rewrite loop (Algorithm 1)
//! feeds back to the LLM as "DBMS error messages", so it is written the way
//! a database server would phrase it.

use std::fmt;

/// A lexing or parsing failure with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub position: usize,
    /// Server-style message, e.g. `syntax error at or near ")"`.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(position: usize, message: impl Into<String>) -> Self {
        ParseError { position, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ERROR: {} (at character {})", self.message, self.position + 1)
    }
}

impl std::error::Error for ParseError {}

/// Frontend-level errors beyond parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexer/parser failure.
    Parse(ParseError),
    /// Template instantiation referenced a placeholder with no binding.
    MissingPlaceholder(u32),
    /// Instantiation supplied a value for a placeholder not in the template.
    UnknownPlaceholder(u32),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "{e}"),
            SqlError::MissingPlaceholder(id) => {
                write!(f, "no value supplied for placeholder p_{id}")
            }
            SqlError::UnknownPlaceholder(id) => {
                write!(f, "value supplied for unknown placeholder p_{id}")
            }
        }
    }
}

impl std::error::Error for SqlError {}

impl From<ParseError> for SqlError {
    fn from(e: ParseError) -> Self {
        SqlError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_message_is_server_style() {
        let e = ParseError::new(4, "syntax error at or near \")\"");
        assert_eq!(e.to_string(), "ERROR: syntax error at or near \")\" (at character 5)");
    }

    #[test]
    fn sql_error_wraps_parse_error() {
        let e: SqlError = ParseError::new(0, "boom").into();
        assert!(matches!(e, SqlError::Parse(_)));
        assert!(e.to_string().contains("boom"));
    }
}
