//! Hand-written SQL lexer.
//!
//! Produces a flat token stream with byte positions. Keywords are
//! recognized case-insensitively; identifiers preserve their original
//! spelling (lowercased, matching PostgreSQL's folding of unquoted
//! identifiers). The nonstandard token `{p_N}` lexes to
//! [`Token::Placeholder`] — this is the paper's template placeholder
//! syntax (Example 2.2).

use crate::error::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Case-folded keyword, e.g. `SELECT`.
    Keyword(Keyword),
    /// Lowercased unquoted identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal, unescaped.
    Str(String),
    /// `{p_N}` template placeholder.
    Placeholder(u32),
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

/// SQL keywords recognized by the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    Distinct,
    Unique,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Limit,
    Asc,
    Desc,
    Join,
    Inner,
    Left,
    Outer,
    Cross,
    On,
    As,
    And,
    Or,
    Not,
    In,
    Between,
    Like,
    Is,
    Null,
    Exists,
    Case,
    When,
    Then,
    Else,
    End,
    True,
    False,
}

impl Keyword {
    fn from_str(word: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match word.to_ascii_uppercase().as_str() {
            "SELECT" => Select,
            "DISTINCT" => Distinct,
            "UNIQUE" => Unique,
            "FROM" => From,
            "WHERE" => Where,
            "GROUP" => Group,
            "BY" => By,
            "HAVING" => Having,
            "ORDER" => Order,
            "LIMIT" => Limit,
            "ASC" => Asc,
            "DESC" => Desc,
            "JOIN" => Join,
            "INNER" => Inner,
            "LEFT" => Left,
            "OUTER" => Outer,
            "CROSS" => Cross,
            "ON" => On,
            "AS" => As,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "IN" => In,
            "BETWEEN" => Between,
            "LIKE" => Like,
            "IS" => Is,
            "NULL" => Null,
            "EXISTS" => Exists,
            "CASE" => Case,
            "WHEN" => When,
            "THEN" => Then,
            "ELSE" => Else,
            "END" => End,
            "TRUE" => True,
            "FALSE" => False,
            _ => return None,
        })
    }
}

/// A token paired with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub pos: usize,
}

/// Tokenize `input` into a vector of spanned tokens.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Spanned { token: Token::LParen, pos: start });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned { token: Token::RParen, pos: start });
                i += 1;
            }
            ',' => {
                tokens.push(Spanned { token: Token::Comma, pos: start });
                i += 1;
            }
            '.' => {
                tokens.push(Spanned { token: Token::Dot, pos: start });
                i += 1;
            }
            ';' => {
                tokens.push(Spanned { token: Token::Semicolon, pos: start });
                i += 1;
            }
            '*' => {
                tokens.push(Spanned { token: Token::Star, pos: start });
                i += 1;
            }
            '+' => {
                tokens.push(Spanned { token: Token::Plus, pos: start });
                i += 1;
            }
            '-' => {
                tokens.push(Spanned { token: Token::Minus, pos: start });
                i += 1;
            }
            '/' => {
                tokens.push(Spanned { token: Token::Slash, pos: start });
                i += 1;
            }
            '%' => {
                tokens.push(Spanned { token: Token::Percent, pos: start });
                i += 1;
            }
            '=' => {
                tokens.push(Spanned { token: Token::Eq, pos: start });
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Spanned { token: Token::LtEq, pos: start });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Spanned { token: Token::NotEq, pos: start });
                    i += 2;
                } else {
                    tokens.push(Spanned { token: Token::Lt, pos: start });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Spanned { token: Token::GtEq, pos: start });
                    i += 2;
                } else {
                    tokens.push(Spanned { token: Token::Gt, pos: start });
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Spanned { token: Token::NotEq, pos: start });
                    i += 2;
                } else {
                    return Err(ParseError::new(start, "syntax error at or near \"!\""));
                }
            }
            '\'' => {
                let mut value = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::new(
                            start,
                            "unterminated quoted string",
                        ));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            value.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        value.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Spanned { token: Token::Str(value), pos: start });
            }
            '{' => {
                // {p_N} placeholder
                let close = input[i..]
                    .find('}')
                    .map(|off| i + off)
                    .ok_or_else(|| ParseError::new(start, "unterminated placeholder"))?;
                let body = &input[i + 1..close];
                let id = body
                    .strip_prefix("p_")
                    .and_then(|n| n.parse::<u32>().ok())
                    .ok_or_else(|| {
                        ParseError::new(
                            start,
                            format!("invalid placeholder \"{{{body}}}\"; expected {{p_N}}"),
                        )
                    })?;
                tokens.push(Spanned { token: Token::Placeholder(id), pos: start });
                i = close + 1;
            }
            '0'..='9' => {
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len() {
                    match bytes[end] {
                        b'0'..=b'9' => end += 1,
                        b'.' if !is_float
                            && end + 1 < bytes.len()
                            && bytes[end + 1].is_ascii_digit() =>
                        {
                            is_float = true;
                            end += 1;
                        }
                        b'e' | b'E'
                            if end + 1 < bytes.len()
                                && (bytes[end + 1].is_ascii_digit()
                                    || ((bytes[end + 1] == b'+' || bytes[end + 1] == b'-')
                                        && end + 2 < bytes.len()
                                        && bytes[end + 2].is_ascii_digit())) =>
                        {
                            is_float = true;
                            end += if bytes[end + 1].is_ascii_digit() { 2 } else { 3 };
                            while end < bytes.len() && bytes[end].is_ascii_digit() {
                                end += 1;
                            }
                            break;
                        }
                        _ => break,
                    }
                }
                let text = &input[i..end];
                let token = if is_float {
                    Token::Float(text.parse().map_err(|_| {
                        ParseError::new(start, format!("invalid numeric literal \"{text}\""))
                    })?)
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => Token::Int(v),
                        Err(_) => Token::Float(text.parse().map_err(|_| {
                            ParseError::new(start, format!("invalid numeric literal \"{text}\""))
                        })?),
                    }
                };
                tokens.push(Spanned { token, pos: start });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                let word = &input[i..end];
                let token = match Keyword::from_str(word) {
                    Some(kw) => Token::Keyword(kw),
                    None => Token::Ident(word.to_ascii_lowercase()),
                };
                tokens.push(Spanned { token, pos: start });
                i = end;
            }
            other => {
                return Err(ParseError::new(
                    start,
                    format!("syntax error at or near \"{other}\""),
                ));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn keywords_fold_case_and_identifiers_lowercase() {
        assert_eq!(
            toks("SeLeCt Foo"),
            vec![Token::Keyword(Keyword::Select), Token::Ident("foo".into())]
        );
    }

    #[test]
    fn placeholder_round_trip() {
        assert_eq!(toks("{p_12}"), vec![Token::Placeholder(12)]);
    }

    #[test]
    fn malformed_placeholder_is_an_error() {
        assert!(tokenize("{q_1}").is_err());
        assert!(tokenize("{p_}").is_err());
        assert!(tokenize("{p_1").is_err());
    }

    #[test]
    fn numbers_int_float_and_exponent() {
        assert_eq!(toks("42"), vec![Token::Int(42)]);
        assert_eq!(toks("4.5"), vec![Token::Float(4.5)]);
        assert_eq!(toks("1e3"), vec![Token::Float(1000.0)]);
        assert_eq!(toks("2.5e-1"), vec![Token::Float(0.25)]);
    }

    #[test]
    fn huge_integer_falls_back_to_float() {
        assert_eq!(toks("99999999999999999999"), vec![Token::Float(1e20)]);
    }

    #[test]
    fn string_with_escaped_quote() {
        assert_eq!(toks("'it''s'"), vec![Token::Str("it's".into())]);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = tokenize("'abc").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >= = <> !="),
            vec![
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::Eq,
                Token::NotEq,
                Token::NotEq
            ]
        );
    }

    #[test]
    fn line_comments_are_skipped() {
        assert_eq!(toks("select -- hi\n x"), vec![
            Token::Keyword(Keyword::Select),
            Token::Ident("x".into())
        ]);
    }

    #[test]
    fn unknown_character_reports_position() {
        let err = tokenize("select #").unwrap_err();
        assert_eq!(err.position, 7);
    }
}
