//! Recursive-descent parser for the SQLBarber SQL subset.
//!
//! Grammar (informally):
//!
//! ```text
//! select     := SELECT [DISTINCT] items FROM table_ref join* [WHERE expr]
//!               [GROUP BY exprs] [HAVING expr] [ORDER BY order_items]
//!               [LIMIT int] [;]
//! join       := [INNER|LEFT [OUTER]|CROSS] JOIN table_ref [ON expr]
//! expr       := or_expr, with standard SQL precedence:
//!               OR < AND < NOT < (comparison | IS | IN | BETWEEN | LIKE)
//!               < additive < multiplicative < unary minus < primary
//! primary    := literal | {p_N} | column | function(args) | CASE …
//!             | ( expr ) | ( select )
//! ```
//!
//! The paper's `SELECT UNIQUE(expr)` idiom (Example 2.2) is accepted as a
//! synonym for `SELECT DISTINCT expr`.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::{tokenize, Keyword, Spanned, Token};
use crate::template::Template;

/// Parse a single `SELECT` statement. Fails on trailing input.
pub fn parse_select(input: &str) -> Result<Select, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0, input_len: input.len() };
    let select = parser.parse_select()?;
    parser.eat_optional(&Token::Semicolon);
    if let Some(tok) = parser.peek() {
        return Err(ParseError::new(
            tok.pos,
            format!("syntax error at or near {}", describe(&tok.token)),
        ));
    }
    Ok(select)
}

/// Parse a SQL template: a `SELECT` statement that may contain `{p_N}`
/// placeholders (Definition 2.1).
pub fn parse_template(input: &str) -> Result<Template, ParseError> {
    Ok(Template::new(parse_select(input)?))
}

fn describe(token: &Token) -> String {
    match token {
        Token::Keyword(kw) => format!("\"{kw:?}\"").to_uppercase(),
        Token::Ident(name) => format!("\"{name}\""),
        Token::Int(v) => format!("\"{v}\""),
        Token::Float(v) => format!("\"{v}\""),
        Token::Str(s) => format!("'{s}'"),
        Token::Placeholder(id) => format!("\"{{p_{id}}}\""),
        Token::LParen => "\"(\"".into(),
        Token::RParen => "\")\"".into(),
        Token::Comma => "\",\"".into(),
        Token::Dot => "\".\"".into(),
        Token::Semicolon => "\";\"".into(),
        Token::Star => "\"*\"".into(),
        Token::Plus => "\"+\"".into(),
        Token::Minus => "\"-\"".into(),
        Token::Slash => "\"/\"".into(),
        Token::Percent => "\"%\"".into(),
        Token::Eq => "\"=\"".into(),
        Token::NotEq => "\"<>\"".into(),
        Token::Lt => "\"<\"".into(),
        Token::LtEq => "\"<=\"".into(),
        Token::Gt => "\">\"".into(),
        Token::GtEq => "\">=\"".into(),
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn peek_token(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn advance(&mut self) -> Option<Spanned> {
        let tok = self.tokens.get(self.pos).cloned();
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn here(&self) -> usize {
        self.peek().map(|s| s.pos).unwrap_or(self.input_len)
    }

    fn error_here(&self, what: &str) -> ParseError {
        match self.peek() {
            Some(tok) => ParseError::new(
                tok.pos,
                format!("{what}, found {}", describe(&tok.token)),
            ),
            None => ParseError::new(self.input_len, format!("{what} at end of input")),
        }
    }

    fn expect(&mut self, token: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek_token() == Some(token) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error_here(what))
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<(), ParseError> {
        let name = format!("{kw:?}").to_uppercase();
        self.expect(&Token::Keyword(kw), &format!("expected {name}"))
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.peek_token() == Some(&Token::Keyword(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_optional(&mut self, token: &Token) -> bool {
        if self.peek_token() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek_token().cloned() {
            Some(Token::Ident(name)) => {
                self.pos += 1;
                Ok(name)
            }
            _ => Err(self.error_here(what)),
        }
    }

    fn parse_select(&mut self) -> Result<Select, ParseError> {
        self.expect_keyword(Keyword::Select)?;
        let mut distinct = self.eat_keyword(Keyword::Distinct);

        // `SELECT UNIQUE(expr, …)` — nonstandard DISTINCT synonym used in
        // the paper's running example.
        let mut projections = Vec::new();
        if self.eat_keyword(Keyword::Unique) {
            distinct = true;
            self.expect(&Token::LParen, "expected \"(\" after UNIQUE")?;
            loop {
                projections.push(self.parse_select_item()?);
                if !self.eat_optional(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen, "expected \")\" to close UNIQUE")?;
        } else {
            loop {
                projections.push(self.parse_select_item()?);
                if !self.eat_optional(&Token::Comma) {
                    break;
                }
            }
        }

        self.expect_keyword(Keyword::From)?;
        let from = self.parse_table_ref()?;
        let mut joins = Vec::new();
        loop {
            if self.eat_optional(&Token::Comma) {
                // comma join → cross join
                let table = self.parse_table_ref()?;
                joins.push(Join { kind: JoinKind::Cross, table, on: None });
                continue;
            }
            let kind = if self.eat_keyword(Keyword::Join) {
                Some(JoinKind::Inner)
            } else if self.eat_keyword(Keyword::Inner) {
                self.expect_keyword(Keyword::Join)?;
                Some(JoinKind::Inner)
            } else if self.eat_keyword(Keyword::Left) {
                self.eat_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                Some(JoinKind::Left)
            } else if self.eat_keyword(Keyword::Cross) {
                self.expect_keyword(Keyword::Join)?;
                Some(JoinKind::Cross)
            } else {
                None
            };
            let Some(kind) = kind else { break };
            let table = self.parse_table_ref()?;
            let on = if kind != JoinKind::Cross {
                self.expect_keyword(Keyword::On)?;
                Some(self.parse_expr()?)
            } else {
                None
            };
            joins.push(Join { kind, table, on });
        }

        let where_clause =
            if self.eat_keyword(Keyword::Where) { Some(self.parse_expr()?) } else { None };

        let mut group_by = Vec::new();
        if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_optional(&Token::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_keyword(Keyword::Having) { Some(self.parse_expr()?) } else { None };

        let mut order_by = Vec::new();
        if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let ascending = if self.eat_keyword(Keyword::Desc) {
                    false
                } else {
                    self.eat_keyword(Keyword::Asc);
                    true
                };
                order_by.push(OrderByItem { expr, ascending });
                if !self.eat_optional(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_keyword(Keyword::Limit) {
            match self.advance().map(|s| s.token) {
                Some(Token::Int(v)) if v >= 0 => Some(v as u64),
                _ => {
                    return Err(ParseError::new(
                        self.here(),
                        "LIMIT must be followed by a non-negative integer",
                    ))
                }
            }
        } else {
            None
        };

        Ok(Select {
            distinct,
            projections,
            from: Some(from),
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.peek_token() == Some(&Token::Star) {
            self.pos += 1;
            return Ok(SelectItem { expr: Expr::Wildcard, alias: None });
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword(Keyword::As) {
            Some(self.expect_ident("expected alias after AS")?)
        } else if let Some(Token::Ident(name)) = self.peek_token().cloned() {
            // bare alias: `SELECT expr name`
            self.pos += 1;
            Some(name)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.expect_ident("expected table name")?;
        let alias = if self.eat_keyword(Keyword::As) {
            Some(self.expect_ident("expected alias after AS")?)
        } else if let Some(Token::Ident(name)) = self.peek_token().cloned() {
            self.pos += 1;
            Some(name)
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    /// Entry point for expression parsing (lowest precedence: OR).
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_keyword(Keyword::Or) {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.eat_keyword(Keyword::And) {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword(Keyword::Not) {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.parse_additive()?;

        // postfix predicates: IS [NOT] NULL, [NOT] IN, [NOT] BETWEEN, [NOT] LIKE
        if self.eat_keyword(Keyword::Is) {
            let negated = self.eat_keyword(Keyword::Not);
            self.expect_keyword(Keyword::Null)?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }

        let negated = if self.peek_token() == Some(&Token::Keyword(Keyword::Not))
            && matches!(
                self.peek2(),
                Some(Token::Keyword(Keyword::In))
                    | Some(Token::Keyword(Keyword::Between))
                    | Some(Token::Keyword(Keyword::Like))
            ) {
            self.pos += 1;
            true
        } else {
            false
        };

        if self.eat_keyword(Keyword::In) {
            self.expect(&Token::LParen, "expected \"(\" after IN")?;
            if self.peek_token() == Some(&Token::Keyword(Keyword::Select)) {
                let subquery = self.parse_select()?;
                self.expect(&Token::RParen, "expected \")\" to close subquery")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    negated,
                    subquery: Box::new(subquery),
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_optional(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen, "expected \")\" to close IN list")?;
            return Ok(Expr::InList { expr: Box::new(left), negated, list });
        }

        if self.eat_keyword(Keyword::Between) {
            let low = self.parse_additive()?;
            self.expect_keyword(Keyword::And)?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                negated,
                low: Box::new(low),
                high: Box::new(high),
            });
        }

        if self.eat_keyword(Keyword::Like) {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like { expr: Box::new(left), negated, pattern: Box::new(pattern) });
        }

        if negated {
            return Err(self.error_here("expected IN, BETWEEN, or LIKE after NOT"));
        }

        let op = match self.peek_token() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::NotEq) => Some(BinaryOp::NotEq),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::LtEq) => Some(BinaryOp::LtEq),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek_token() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek_token() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek_token() == Some(&Token::Minus) {
            self.pos += 1;
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) });
        }
        if self.peek_token() == Some(&Token::Plus) {
            self.pos += 1;
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let Some(spanned) = self.peek().cloned() else {
            return Err(self.error_here("expected expression"));
        };
        match spanned.token {
            Token::Int(v) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(v)))
            }
            Token::Float(v) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(v)))
            }
            Token::Str(s) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(s)))
            }
            Token::Placeholder(id) => {
                self.pos += 1;
                Ok(Expr::Placeholder(id))
            }
            Token::Keyword(Keyword::Null) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Null))
            }
            Token::Keyword(Keyword::True) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bool(true)))
            }
            Token::Keyword(Keyword::False) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bool(false)))
            }
            Token::Keyword(Keyword::Exists) => {
                self.pos += 1;
                self.expect(&Token::LParen, "expected \"(\" after EXISTS")?;
                let subquery = self.parse_select()?;
                self.expect(&Token::RParen, "expected \")\" to close subquery")?;
                Ok(Expr::Exists { negated: false, subquery: Box::new(subquery) })
            }
            Token::Keyword(Keyword::Not)
                if self.peek2() == Some(&Token::Keyword(Keyword::Exists)) =>
            {
                self.pos += 2;
                self.expect(&Token::LParen, "expected \"(\" after EXISTS")?;
                let subquery = self.parse_select()?;
                self.expect(&Token::RParen, "expected \")\" to close subquery")?;
                Ok(Expr::Exists { negated: true, subquery: Box::new(subquery) })
            }
            Token::Keyword(Keyword::Case) => {
                self.pos += 1;
                self.parse_case()
            }
            Token::LParen => {
                self.pos += 1;
                if self.peek_token() == Some(&Token::Keyword(Keyword::Select)) {
                    let subquery = self.parse_select()?;
                    self.expect(&Token::RParen, "expected \")\" to close subquery")?;
                    Ok(Expr::ScalarSubquery(Box::new(subquery)))
                } else {
                    let expr = self.parse_expr()?;
                    self.expect(&Token::RParen, "expected \")\"")?;
                    Ok(expr)
                }
            }
            Token::Ident(name) => {
                self.pos += 1;
                // function call?
                if self.peek_token() == Some(&Token::LParen) {
                    self.pos += 1;
                    let distinct = self.eat_keyword(Keyword::Distinct);
                    let mut args = Vec::new();
                    if self.peek_token() == Some(&Token::Star) {
                        self.pos += 1;
                        args.push(Expr::Wildcard);
                    } else if self.peek_token() != Some(&Token::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_optional(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen, "expected \")\" to close argument list")?;
                    return Ok(Expr::Function { name: name.to_ascii_uppercase(), distinct, args });
                }
                // qualified column?
                if self.peek_token() == Some(&Token::Dot) {
                    self.pos += 1;
                    let column = self.expect_ident("expected column name after \".\"")?;
                    return Ok(Expr::Column(ColumnRef::qualified(name, column)));
                }
                Ok(Expr::Column(ColumnRef::bare(name)))
            }
            _ => Err(ParseError::new(
                spanned.pos,
                format!("syntax error at or near {}", describe(&spanned.token)),
            )),
        }
    }

    fn parse_case(&mut self) -> Result<Expr, ParseError> {
        let operand = if self.peek_token() != Some(&Token::Keyword(Keyword::When)) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.eat_keyword(Keyword::When) {
            let when = self.parse_expr()?;
            self.expect_keyword(Keyword::Then)?;
            let then = self.parse_expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.error_here("CASE requires at least one WHEN branch"));
        }
        let else_branch = if self.eat_keyword(Keyword::Else) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword(Keyword::End)?;
        Ok(Expr::Case { operand, branches, else_branch })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_2_2() {
        let s = parse_select(
            "SELECT UNIQUE(user_id) FROM orders WHERE orders.order_amount > {p_1};",
        )
        .unwrap();
        assert!(s.distinct);
        assert_eq!(s.from.as_ref().unwrap().table, "orders");
        assert!(matches!(
            s.where_clause,
            Some(Expr::Binary { op: BinaryOp::Gt, .. })
        ));
    }

    #[test]
    fn parses_paper_example_2_8_nested_subquery() {
        let sql = "SELECT u.user_name, SUM(o.order_amount) \
                   FROM users AS u \
                   JOIN orders AS o ON u.user_id = o.user_id \
                   WHERE u.user_id IN ( \
                       SELECT user_id FROM orders GROUP BY user_id \
                       HAVING COUNT(order_id) > {p_1} ) \
                   AND o.order_amount >= {p_2};";
        let s = parse_select(sql).unwrap();
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.subqueries().len(), 1);
        let subs = s.subqueries();
        assert_eq!(subs[0].group_by.len(), 1);
        assert!(subs[0].having.is_some());
    }

    #[test]
    fn comma_from_desugars_to_cross_join() {
        let s = parse_select("SELECT * FROM a, b WHERE a.x = b.y").unwrap();
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].kind, JoinKind::Cross);
    }

    #[test]
    fn operator_precedence_and_or() {
        let s = parse_select("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        // OR is top-level: (a=1) OR ((b=2) AND (c=3))
        match s.where_clause.unwrap() {
            Expr::Binary { op: BinaryOp::Or, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinaryOp::And, .. }));
            }
            other => panic!("unexpected tree: {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse_select("SELECT 1 + 2 * 3 FROM t").unwrap();
        match &s.projections[0].expr {
            Expr::Binary { op: BinaryOp::Add, right, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinaryOp::Mul, .. }));
            }
            other => panic!("unexpected tree: {other:?}"),
        }
    }

    #[test]
    fn between_not_in_like_is_null() {
        let s = parse_select(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b NOT IN (1,2) \
             AND c LIKE 'x%' AND d IS NOT NULL",
        )
        .unwrap();
        let mut kinds = Vec::new();
        s.where_clause.as_ref().unwrap().walk(&mut |e| match e {
            Expr::Between { .. } => kinds.push("between"),
            Expr::InList { negated: true, .. } => kinds.push("not_in"),
            Expr::Like { .. } => kinds.push("like"),
            Expr::IsNull { negated: true, .. } => kinds.push("is_not_null"),
            _ => {}
        });
        kinds.sort_unstable();
        assert_eq!(kinds, vec!["between", "is_not_null", "like", "not_in"]);
    }

    #[test]
    fn count_star_and_distinct_arguments() {
        let s = parse_select("SELECT COUNT(*), COUNT(DISTINCT x) FROM t").unwrap();
        match &s.projections[0].expr {
            Expr::Function { name, args, .. } => {
                assert_eq!(name, "COUNT");
                assert!(matches!(args[0], Expr::Wildcard));
            }
            other => panic!("unexpected: {other:?}"),
        }
        match &s.projections[1].expr {
            Expr::Function { distinct, .. } => assert!(distinct),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn case_expression() {
        let s = parse_select(
            "SELECT CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END FROM t",
        )
        .unwrap();
        assert!(matches!(s.projections[0].expr, Expr::Case { .. }));
    }

    #[test]
    fn order_by_limit_group_by_having() {
        let s = parse_select(
            "SELECT x, COUNT(*) FROM t GROUP BY x HAVING COUNT(*) > 3 \
             ORDER BY x DESC, y LIMIT 10",
        )
        .unwrap();
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(!s.order_by[0].ascending);
        assert!(s.order_by[1].ascending);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn left_join_and_cross_join() {
        let s = parse_select(
            "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x CROSS JOIN c",
        )
        .unwrap();
        assert_eq!(s.joins[0].kind, JoinKind::Left);
        assert_eq!(s.joins[1].kind, JoinKind::Cross);
        assert!(s.joins[1].on.is_none());
    }

    #[test]
    fn trailing_garbage_is_rejected_with_position() {
        let err = parse_select("SELECT * FROM t WHERE").unwrap_err();
        assert!(err.message.contains("expected expression"));
        let err = parse_select("SELECT * FROM t 42").unwrap_err();
        assert!(err.message.contains("syntax error"));
    }

    #[test]
    fn missing_on_clause_is_rejected() {
        let err = parse_select("SELECT * FROM a JOIN b WHERE a.x = 1").unwrap_err();
        assert!(err.message.to_uppercase().contains("ON"));
    }

    #[test]
    fn exists_and_not_exists() {
        let s = parse_select(
            "SELECT * FROM a WHERE EXISTS (SELECT * FROM b) AND NOT EXISTS (SELECT * FROM c)",
        )
        .unwrap();
        assert_eq!(s.subqueries().len(), 2);
    }

    #[test]
    fn scalar_subquery_in_projection() {
        let s = parse_select("SELECT (SELECT MAX(x) FROM b) FROM a").unwrap();
        assert!(matches!(s.projections[0].expr, Expr::ScalarSubquery(_)));
    }

    #[test]
    fn bare_alias_in_projection_and_from() {
        let s = parse_select("SELECT x total FROM orders o").unwrap();
        assert_eq!(s.projections[0].alias.as_deref(), Some("total"));
        assert_eq!(s.from.as_ref().unwrap().alias.as_deref(), Some("o"));
    }
}
