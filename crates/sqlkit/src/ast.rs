//! Abstract syntax tree for the SQL subset used by SQLBarber.
//!
//! The tree is deliberately small but expressive enough for every template
//! the paper's generators emit: multi-way joins, aggregations, nested
//! subqueries, and complex scalar expressions. Placeholders (`{p_i}`) are
//! first-class expression nodes so a template and a query share one type;
//! a [`Select`] with no remaining [`Expr::Placeholder`] nodes is executable.

use std::collections::HashMap;
use std::fmt;

/// A SQL literal or runtime value.
///
/// `minidb` reuses this type as its cell value, so instantiating a template
/// with catalog-sampled values requires no conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// SQL NULL.
    Null,
}

impl Value {
    /// Numeric view of the value, if it has one (`Int`, `Float`, `Bool`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// True if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total order used by `ORDER BY`, `MIN`/`MAX`, and histogram
    /// construction: NULLs sort first, numbers compare numerically across
    /// `Int`/`Float`, strings lexicographically; mixed kinds compare by a
    /// fixed kind rank so the order is total.
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Null => write!(f, "NULL"),
        }
    }
}

/// A possibly-qualified column reference (`alias.column` or `column`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table name or alias qualifier, if written.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified column reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef { table: None, column: column.into() }
    }

    /// Qualified column reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef { table: Some(table.into()), column: column.into() }
    }
}

/// Binary operators, covering arithmetic, comparison, and boolean logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinaryOp {
    /// True for `=`, `<>`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(self) -> bool {
        use BinaryOp::*;
        matches!(self, Eq | NotEq | Lt | LtEq | Gt | GtEq)
    }

    /// True for `+`, `-`, `*`, `/`, `%`.
    pub fn is_arithmetic(self) -> bool {
        use BinaryOp::*;
        matches!(self, Add | Sub | Mul | Div | Mod)
    }

    /// SQL spelling of the operator.
    pub fn symbol(self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Eq => "=",
            NotEq => "<>",
            Lt => "<",
            LtEq => "<=",
            Gt => ">",
            GtEq => ">=",
            And => "AND",
            Or => "OR",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation (`-expr`).
    Neg,
    /// Boolean negation (`NOT expr`).
    Not,
}

/// A scalar or boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Value),
    /// Template placeholder `{p_i}` (Definition 2.1). A query is a template
    /// with zero remaining placeholders.
    Placeholder(u32),
    /// `*` — only valid inside `COUNT(*)` or as a lone projection.
    Wildcard,
    /// Unary operator application.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Binary operator application.
    Binary { left: Box<Expr>, op: BinaryOp, right: Box<Expr> },
    /// `expr [NOT] BETWEEN low AND high`.
    Between { expr: Box<Expr>, negated: bool, low: Box<Expr>, high: Box<Expr> },
    /// `expr [NOT] IN (v1, v2, …)`.
    InList { expr: Box<Expr>, negated: bool, list: Vec<Expr> },
    /// `expr [NOT] IN (SELECT …)` — an uncorrelated subquery.
    InSubquery { expr: Box<Expr>, negated: bool, subquery: Box<Select> },
    /// `(SELECT …)` used as a scalar.
    ScalarSubquery(Box<Select>),
    /// `[NOT] EXISTS (SELECT …)`.
    Exists { negated: bool, subquery: Box<Select> },
    /// `expr [NOT] LIKE 'pattern'`.
    Like { expr: Box<Expr>, negated: bool, pattern: Box<Expr> },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// Function call — aggregates (`COUNT`, `SUM`, `AVG`, `MIN`, `MAX`) and
    /// scalar functions (`ABS`, `ROUND`, `LENGTH`, `UPPER`, `LOWER`,
    /// `COALESCE`, `SUBSTR`, …).
    Function { name: String, distinct: bool, args: Vec<Expr> },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_branch: Option<Box<Expr>>,
    },
}

/// Names treated as aggregate functions.
pub const AGGREGATE_FUNCTIONS: [&str; 5] = ["COUNT", "SUM", "AVG", "MIN", "MAX"];

impl Expr {
    /// Column reference shorthand.
    pub fn col(table: impl Into<String>, column: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::qualified(table, column))
    }

    /// Literal shorthand.
    pub fn lit(value: Value) -> Expr {
        Expr::Literal(value)
    }

    /// Binary expression shorthand.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    /// `left AND right`, flattening a `None` left side.
    pub fn and_opt(acc: Option<Expr>, next: Expr) -> Expr {
        match acc {
            None => next,
            Some(prev) => Expr::binary(prev, BinaryOp::And, next),
        }
    }

    /// True if this node is an aggregate function call.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, Expr::Function { name, .. }
            if AGGREGATE_FUNCTIONS.contains(&name.to_ascii_uppercase().as_str()))
    }

    /// Depth-first pre-order walk over this expression, including subquery
    /// expressions but *not* descending into subquery `Select` bodies.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a Expr)) {
        visit(self);
        match self {
            Expr::Column(_) | Expr::Literal(_) | Expr::Placeholder(_) | Expr::Wildcard => {}
            Expr::Unary { expr, .. } => expr.walk(visit),
            Expr::Binary { left, right, .. } => {
                left.walk(visit);
                right.walk(visit);
            }
            Expr::Between { expr, low, high, .. } => {
                expr.walk(visit);
                low.walk(visit);
                high.walk(visit);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(visit);
                for item in list {
                    item.walk(visit);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk(visit),
            Expr::ScalarSubquery(_) | Expr::Exists { .. } => {}
            Expr::Like { expr, pattern, .. } => {
                expr.walk(visit);
                pattern.walk(visit);
            }
            Expr::IsNull { expr, .. } => expr.walk(visit),
            Expr::Function { args, .. } => {
                for arg in args {
                    arg.walk(visit);
                }
            }
            Expr::Case { operand, branches, else_branch } => {
                if let Some(op) = operand {
                    op.walk(visit);
                }
                for (when, then) in branches {
                    when.walk(visit);
                    then.walk(visit);
                }
                if let Some(e) = else_branch {
                    e.walk(visit);
                }
            }
        }
    }

    /// Subquery bodies directly contained in this expression subtree.
    pub fn subqueries(&self) -> Vec<&Select> {
        let mut found = Vec::new();
        let mut stack = vec![self];
        while let Some(expr) = stack.pop() {
            match expr {
                Expr::InSubquery { expr, subquery, .. } => {
                    found.push(subquery.as_ref());
                    stack.push(expr);
                }
                Expr::ScalarSubquery(sq) => found.push(sq.as_ref()),
                Expr::Exists { subquery, .. } => found.push(subquery.as_ref()),
                Expr::Unary { expr, .. } => stack.push(expr),
                Expr::Binary { left, right, .. } => {
                    stack.push(left);
                    stack.push(right);
                }
                Expr::Between { expr, low, high, .. } => {
                    stack.push(expr);
                    stack.push(low);
                    stack.push(high);
                }
                Expr::InList { expr, list, .. } => {
                    stack.push(expr);
                    stack.extend(list.iter());
                }
                Expr::Like { expr, pattern, .. } => {
                    stack.push(expr);
                    stack.push(pattern);
                }
                Expr::IsNull { expr, .. } => stack.push(expr),
                Expr::Function { args, .. } => stack.extend(args.iter()),
                Expr::Case { operand, branches, else_branch } => {
                    if let Some(op) = operand {
                        stack.push(op);
                    }
                    for (w, t) in branches {
                        stack.push(w);
                        stack.push(t);
                    }
                    if let Some(e) = else_branch {
                        stack.push(e);
                    }
                }
                _ => {}
            }
        }
        found
    }

    /// True if a placeholder remains anywhere in this expression,
    /// *including* inside subquery bodies (which [`Expr::walk`] skips).
    pub fn has_placeholders(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Placeholder(_)) {
                found = true;
            }
        });
        found || self.subqueries().iter().any(|sq| sq.has_placeholders())
    }

    /// Clone of this expression with every bound placeholder replaced by
    /// its literal value; descends into subquery bodies. Placeholders
    /// without a binding are left in place.
    pub fn substitute(&self, bindings: &HashMap<u32, Value>) -> Expr {
        let mut out = self.clone();
        out.walk_mut(&mut |e| {
            if let Expr::Placeholder(id) = e {
                if let Some(value) = bindings.get(id) {
                    *e = Expr::Literal(value.clone());
                }
            }
        });
        out
    }

    /// Mutable walk used by template instantiation; visits every node in
    /// this expression including nodes inside subquery bodies.
    pub fn walk_mut(&mut self, visit: &mut dyn FnMut(&mut Expr)) {
        visit(self);
        match self {
            Expr::Column(_) | Expr::Literal(_) | Expr::Placeholder(_) | Expr::Wildcard => {}
            Expr::Unary { expr, .. } => expr.walk_mut(visit),
            Expr::Binary { left, right, .. } => {
                left.walk_mut(visit);
                right.walk_mut(visit);
            }
            Expr::Between { expr, low, high, .. } => {
                expr.walk_mut(visit);
                low.walk_mut(visit);
                high.walk_mut(visit);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk_mut(visit);
                for item in list {
                    item.walk_mut(visit);
                }
            }
            Expr::InSubquery { expr, subquery, .. } => {
                expr.walk_mut(visit);
                subquery.walk_exprs_mut(visit);
            }
            Expr::ScalarSubquery(sq) => sq.walk_exprs_mut(visit),
            Expr::Exists { subquery, .. } => subquery.walk_exprs_mut(visit),
            Expr::Like { expr, pattern, .. } => {
                expr.walk_mut(visit);
                pattern.walk_mut(visit);
            }
            Expr::IsNull { expr, .. } => expr.walk_mut(visit),
            Expr::Function { args, .. } => {
                for arg in args {
                    arg.walk_mut(visit);
                }
            }
            Expr::Case { operand, branches, else_branch } => {
                if let Some(op) = operand {
                    op.walk_mut(visit);
                }
                for (when, then) in branches {
                    when.walk_mut(visit);
                    then.walk_mut(visit);
                }
                if let Some(e) = else_branch {
                    e.walk_mut(visit);
                }
            }
        }
    }
}

/// One item in the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected expression (`Expr::Wildcard` for `SELECT *`).
    pub expr: Expr,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

/// A base table reference in `FROM`, with optional alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableRef {
    /// Table name as written.
    pub table: String,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

impl TableRef {
    /// New reference without alias.
    pub fn new(table: impl Into<String>) -> Self {
        TableRef { table: table.into(), alias: None }
    }

    /// New reference with alias.
    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef { table: table.into(), alias: Some(alias.into()) }
    }

    /// The name other clauses use to refer to this table (alias if present).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// Join flavor. The generators only emit inner joins; cross joins appear
/// when comma-separated `FROM` lists are desugared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

/// One `JOIN table ON condition` step.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub kind: JoinKind,
    pub table: TableRef,
    /// Join condition; `None` only for `Cross`.
    pub on: Option<Expr>,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub ascending: bool,
}

/// A `SELECT` statement (Definition 2.3 when placeholder-free, part of a
/// Definition 2.1 template otherwise).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    pub distinct: bool,
    pub projections: Vec<SelectItem>,
    /// First table in `FROM`; `None` only for table-less selects, which the
    /// parser rejects — kept optional so `Default` exists for builders.
    pub from: Option<TableRef>,
    pub joins: Vec<Join>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<u64>,
}

impl Select {
    /// All base table references, including join targets, in `FROM` order.
    /// Does not descend into subqueries.
    pub fn table_refs(&self) -> Vec<&TableRef> {
        let mut refs = Vec::with_capacity(1 + self.joins.len());
        if let Some(t) = &self.from {
            refs.push(t);
        }
        refs.extend(self.joins.iter().map(|j| &j.table));
        refs
    }

    /// Visit every expression in the statement, top level before
    /// subqueries: projections, join conditions, `WHERE`, `GROUP BY`,
    /// `HAVING`, and `ORDER BY`.
    pub fn walk_exprs<'a>(&'a self, visit: &mut dyn FnMut(&'a Expr)) {
        for item in &self.projections {
            item.expr.walk(visit);
        }
        for join in &self.joins {
            if let Some(on) = &join.on {
                on.walk(visit);
            }
        }
        if let Some(w) = &self.where_clause {
            w.walk(visit);
        }
        for g in &self.group_by {
            g.walk(visit);
        }
        if let Some(h) = &self.having {
            h.walk(visit);
        }
        for o in &self.order_by {
            o.expr.walk(visit);
        }
    }

    /// Mutable variant of [`Select::walk_exprs`]; *does* descend into
    /// subquery bodies (required so instantiation reaches placeholders in
    /// nested selects).
    pub fn walk_exprs_mut(&mut self, visit: &mut dyn FnMut(&mut Expr)) {
        for item in &mut self.projections {
            item.expr.walk_mut(visit);
        }
        for join in &mut self.joins {
            if let Some(on) = &mut join.on {
                on.walk_mut(visit);
            }
        }
        if let Some(w) = &mut self.where_clause {
            w.walk_mut(visit);
        }
        for g in &mut self.group_by {
            g.walk_mut(visit);
        }
        if let Some(h) = &mut self.having {
            h.walk_mut(visit);
        }
        for o in &mut self.order_by {
            o.expr.walk_mut(visit);
        }
    }

    /// True if a placeholder remains anywhere in the statement, including
    /// inside nested subquery bodies.
    pub fn has_placeholders(&self) -> bool {
        let mut found = false;
        self.walk_exprs(&mut |e| {
            if matches!(e, Expr::Placeholder(_)) {
                found = true;
            }
        });
        found || self.subqueries().iter().any(|sq| sq.has_placeholders())
    }

    /// Immediate subquery bodies anywhere in the statement (one level).
    /// `walk_exprs` does not descend into subquery bodies, so each body is
    /// reported exactly once.
    pub fn subqueries(&self) -> Vec<&Select> {
        let mut found = Vec::new();
        self.walk_exprs(&mut |e| {
            if let Expr::InSubquery { subquery, .. } = e {
                found.push(subquery.as_ref());
            }
            if let Expr::ScalarSubquery(sq) = e {
                found.push(sq.as_ref());
            }
            if let Expr::Exists { subquery, .. } = e {
                found.push(subquery.as_ref());
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_total_order_is_total_and_numeric_across_kinds() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(3).total_cmp(&Value::Float(3.0)), Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Less);
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Less);
        assert_eq!(Value::Str("a".into()).total_cmp(&Value::Int(9)), Greater);
        assert_eq!(Value::Bool(false).total_cmp(&Value::Bool(true)), Less);
    }

    #[test]
    fn value_display_quotes_and_escapes_strings() {
        assert_eq!(Value::Str("it's".into()).to_string(), "'it''s'");
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn aggregate_detection_is_case_insensitive() {
        let agg = Expr::Function { name: "sum".into(), distinct: false, args: vec![] };
        let not_agg = Expr::Function { name: "abs".into(), distinct: false, args: vec![] };
        assert!(agg.is_aggregate());
        assert!(!not_agg.is_aggregate());
    }

    #[test]
    fn walk_visits_nested_binary_nodes() {
        let e = Expr::binary(
            Expr::col("t", "a"),
            BinaryOp::Gt,
            Expr::binary(Expr::Placeholder(1), BinaryOp::Add, Expr::lit(Value::Int(1))),
        );
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 5);
    }

    #[test]
    fn subqueries_are_collected_from_where_clause() {
        let inner = Select {
            projections: vec![SelectItem { expr: Expr::col("o", "id"), alias: None }],
            from: Some(TableRef::aliased("orders", "o")),
            ..Default::default()
        };
        let outer = Select {
            projections: vec![SelectItem { expr: Expr::Wildcard, alias: None }],
            from: Some(TableRef::new("users")),
            where_clause: Some(Expr::InSubquery {
                expr: Box::new(Expr::col("users", "id")),
                negated: false,
                subquery: Box::new(inner),
            }),
            ..Default::default()
        };
        assert_eq!(outer.subqueries().len(), 1);
    }

    #[test]
    fn table_refs_include_join_targets_in_order() {
        let s = Select {
            from: Some(TableRef::new("a")),
            joins: vec![
                Join { kind: JoinKind::Inner, table: TableRef::new("b"), on: None },
                Join { kind: JoinKind::Inner, table: TableRef::new("c"), on: None },
            ],
            ..Default::default()
        };
        let names: Vec<_> = s.table_refs().iter().map(|t| t.table.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn binding_prefers_alias() {
        assert_eq!(TableRef::aliased("orders", "o").binding(), "o");
        assert_eq!(TableRef::new("orders").binding(), "orders");
    }

    #[test]
    fn walk_mut_reaches_placeholders_inside_subqueries() {
        let inner = Select {
            projections: vec![SelectItem { expr: Expr::col("o", "id"), alias: None }],
            from: Some(TableRef::new("orders")),
            where_clause: Some(Expr::binary(
                Expr::col("orders", "amount"),
                BinaryOp::Gt,
                Expr::Placeholder(7),
            )),
            ..Default::default()
        };
        let mut outer = Select {
            projections: vec![SelectItem { expr: Expr::Wildcard, alias: None }],
            from: Some(TableRef::new("users")),
            where_clause: Some(Expr::Exists { negated: false, subquery: Box::new(inner) }),
            ..Default::default()
        };
        let mut seen = Vec::new();
        outer.walk_exprs_mut(&mut |e| {
            if let Expr::Placeholder(id) = e {
                seen.push(*id);
            }
        });
        assert_eq!(seen, vec![7]);
    }
}
