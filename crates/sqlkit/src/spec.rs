//! Template specifications and compliance checking.
//!
//! A [`TemplateSpec`] is the machine form of the paper's Definition 2.5: a
//! mix of numerical constraints (`num_tables`, `num_joins`,
//! `num_aggregations` — the attributes the Redset workload annotates every
//! template with) and natural-language [`Instruction`]s ("have a nested
//! subquery", "use GROUP BY", "have three predicates", …).
//!
//! [`TemplateSpec::check`] diffs a template's [`TemplateFeatures`] against
//! the spec and returns the list of violations; this is the ground truth
//! that both the synthetic LLM's `ValidateSemantics` and the Template
//! Alignment Accuracy metric are built on.

use crate::features::TemplateFeatures;
use std::fmt;

/// A natural-language instruction constraining template structure.
///
/// The paper's evaluation uses three instructions (nested subquery,
/// number of predicates, GROUP BY); `NoJoins` and
/// `ComplexScalarExpressions` come from its business-intelligence
/// motivating example ("an SQL template with no joins but with complex
/// scalar expressions", Example 2.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// The template must contain a nested subquery.
    NestedSubquery,
    /// The template must contain exactly this many placeholder predicates.
    NumPredicates(u32),
    /// The template must use `GROUP BY`.
    GroupBy,
    /// The template must not contain any join.
    NoJoins,
    /// The `SELECT` list must contain complex scalar expressions
    /// (arithmetic / `CASE` / scalar functions), complexity ≥ 3.
    ComplexScalarExpressions,
    /// The template must have an `ORDER BY` clause.
    OrderBy,
    /// The template must apply `DISTINCT`.
    Distinct,
}

impl Instruction {
    /// Parse a natural-language instruction. Matching is keyword-based and
    /// case-insensitive, tolerant to phrasing ("have a nested subquery",
    /// "include one nested subquery", …). Returns `None` when the sentence
    /// matches no known constraint.
    pub fn parse(text: &str) -> Option<Instruction> {
        let lower = text.to_ascii_lowercase();
        if lower.contains("subquery") || lower.contains("sub-query") {
            return Some(Instruction::NestedSubquery);
        }
        if lower.contains("no join") || lower.contains("without join")
            || lower.contains("zero join")
        {
            return Some(Instruction::NoJoins);
        }
        if lower.contains("scalar expression") || lower.contains("scalar expr") {
            return Some(Instruction::ComplexScalarExpressions);
        }
        if lower.contains("group by") || lower.contains("groupby") {
            return Some(Instruction::GroupBy);
        }
        if lower.contains("order by") || lower.contains("orderby") {
            return Some(Instruction::OrderBy);
        }
        if lower.contains("distinct") || lower.contains("unique") {
            return Some(Instruction::Distinct);
        }
        if lower.contains("predicate") {
            let n = extract_count(&lower)?;
            return Some(Instruction::NumPredicates(n));
        }
        None
    }

    /// Human-readable phrasing, used when building prompts.
    pub fn describe(&self) -> String {
        match self {
            Instruction::NestedSubquery => "include a nested subquery".into(),
            Instruction::NumPredicates(n) => {
                format!("have exactly {n} predicate placeholder(s)")
            }
            Instruction::GroupBy => "use the GROUP BY operator".into(),
            Instruction::NoJoins => "contain no joins".into(),
            Instruction::ComplexScalarExpressions => {
                "project complex scalar expressions".into()
            }
            Instruction::OrderBy => "include an ORDER BY clause".into(),
            Instruction::Distinct => "apply DISTINCT to the result".into(),
        }
    }
}

/// Extract the first count word or number from a lowercase sentence.
fn extract_count(lower: &str) -> Option<u32> {
    const WORDS: [(&str, u32); 10] = [
        ("one", 1),
        ("two", 2),
        ("three", 3),
        ("four", 4),
        ("five", 5),
        ("six", 6),
        ("seven", 7),
        ("eight", 8),
        ("nine", 9),
        ("ten", 10),
    ];
    for token in lower.split(|c: char| !c.is_ascii_alphanumeric()) {
        if let Ok(n) = token.parse::<u32>() {
            return Some(n);
        }
        for (word, n) in WORDS {
            if token == word {
                return Some(n);
            }
        }
    }
    None
}

/// A specification for one SQL template (Definition 2.5).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TemplateSpec {
    /// Identifier, matching the paper's `template id` JSON attribute.
    pub id: u32,
    /// Required number of distinct base tables accessed.
    pub num_tables: Option<u32>,
    /// Required number of joins.
    pub num_joins: Option<u32>,
    /// Required number of aggregations.
    pub num_aggregations: Option<u32>,
    /// Structural natural-language instructions.
    pub instructions: Vec<Instruction>,
}

impl TemplateSpec {
    /// New empty spec with an id.
    pub fn new(id: u32) -> Self {
        TemplateSpec { id, ..Default::default() }
    }

    /// Builder: constrain the number of tables.
    pub fn with_tables(mut self, n: u32) -> Self {
        self.num_tables = Some(n);
        self
    }

    /// Builder: constrain the number of joins.
    pub fn with_joins(mut self, n: u32) -> Self {
        self.num_joins = Some(n);
        self
    }

    /// Builder: constrain the number of aggregations.
    pub fn with_aggregations(mut self, n: u32) -> Self {
        self.num_aggregations = Some(n);
        self
    }

    /// Builder: add a structured instruction.
    pub fn with_instruction(mut self, instruction: Instruction) -> Self {
        self.instructions.push(instruction);
        self
    }

    /// Builder: add a natural-language instruction; sentences that match no
    /// known constraint are ignored (the paper's system likewise only
    /// enforces constraints the validator can check).
    pub fn with_nl_instruction(mut self, text: &str) -> Self {
        if let Some(instruction) = Instruction::parse(text) {
            self.instructions.push(instruction);
        }
        self
    }

    /// Parse a declarative one-line spec: optional `key=value` tokens
    /// (`tables`, `joins`, `aggregations`/`aggs`) followed by `;`-separated
    /// natural-language instructions. Examples:
    ///
    /// ```
    /// use sqlkit::TemplateSpec;
    /// let spec = TemplateSpec::parse_declarative(
    ///     1,
    ///     "tables=3 joins=2 aggs=1; include a nested subquery; use GROUP BY",
    /// );
    /// assert_eq!(spec.num_tables, Some(3));
    /// assert_eq!(spec.num_joins, Some(2));
    /// assert_eq!(spec.num_aggregations, Some(1));
    /// assert_eq!(spec.instructions.len(), 2);
    /// ```
    pub fn parse_declarative(id: u32, text: &str) -> TemplateSpec {
        let mut spec = TemplateSpec::new(id);
        let mut parts = text.split(';');
        // First segment may carry key=value constraints; everything that
        // is not a recognized key=value is treated as NL.
        if let Some(first) = parts.next() {
            let mut leftover = Vec::new();
            for token in first.split_whitespace() {
                match token.split_once('=') {
                    Some(("tables", v)) => spec.num_tables = v.parse().ok(),
                    Some(("joins", v)) => spec.num_joins = v.parse().ok(),
                    Some(("aggregations", v)) | Some(("aggs", v)) => {
                        spec.num_aggregations = v.parse().ok()
                    }
                    _ => leftover.push(token),
                }
            }
            if !leftover.is_empty() {
                spec = spec.with_nl_instruction(&leftover.join(" "));
            }
        }
        for sentence in parts {
            spec = spec.with_nl_instruction(sentence);
        }
        spec
    }

    /// Check a template's features against this spec, returning every
    /// violation (empty = compliant). This is the ground-truth predicate
    /// behind the paper's `ValidateSemantics` LLM call.
    pub fn check(&self, features: &TemplateFeatures) -> Vec<SpecViolation> {
        let mut violations = Vec::new();
        if let Some(expected) = self.num_tables {
            if features.num_tables != expected {
                violations.push(SpecViolation::count(
                    "num_tables_accessed",
                    expected,
                    features.num_tables,
                ));
            }
        }
        if let Some(expected) = self.num_joins {
            if features.num_joins != expected {
                violations.push(SpecViolation::count("num_joins", expected, features.num_joins));
            }
        }
        if let Some(expected) = self.num_aggregations {
            if features.num_aggregations != expected {
                violations.push(SpecViolation::count(
                    "num_aggregations",
                    expected,
                    features.num_aggregations,
                ));
            }
        }
        for instruction in &self.instructions {
            let ok = match instruction {
                Instruction::NestedSubquery => features.has_nested_subquery(),
                Instruction::NumPredicates(n) => features.num_placeholders == *n,
                Instruction::GroupBy => features.has_group_by,
                Instruction::NoJoins => features.num_joins == 0,
                Instruction::ComplexScalarExpressions => features.scalar_complexity >= 3,
                Instruction::OrderBy => features.has_order_by,
                Instruction::Distinct => features.has_distinct,
            };
            if !ok {
                violations.push(SpecViolation::instruction(*instruction, features));
            }
        }
        violations
    }

    /// True when the template satisfies every constraint.
    pub fn is_satisfied_by(&self, features: &TemplateFeatures) -> bool {
        self.check(features).is_empty()
    }
}

/// One violated constraint, phrased for LLM feedback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecViolation {
    /// Constraint name, e.g. `num_joins` or `nested_subquery`.
    pub constraint: String,
    /// Expected value/behaviour.
    pub expected: String,
    /// Observed value/behaviour.
    pub actual: String,
}

impl SpecViolation {
    fn count(constraint: &str, expected: u32, actual: u32) -> Self {
        SpecViolation {
            constraint: constraint.into(),
            expected: expected.to_string(),
            actual: actual.to_string(),
        }
    }

    fn instruction(instruction: Instruction, features: &TemplateFeatures) -> Self {
        let (constraint, expected, actual) = match instruction {
            Instruction::NestedSubquery => (
                "nested_subquery",
                "present".to_string(),
                format!("{} subqueries", features.num_subqueries),
            ),
            Instruction::NumPredicates(n) => (
                "num_predicate_placeholders",
                n.to_string(),
                features.num_placeholders.to_string(),
            ),
            Instruction::GroupBy => {
                ("group_by", "present".to_string(), "absent".to_string())
            }
            Instruction::NoJoins => (
                "no_joins",
                "0 joins".to_string(),
                format!("{} joins", features.num_joins),
            ),
            Instruction::ComplexScalarExpressions => (
                "complex_scalar_expressions",
                "complexity >= 3".to_string(),
                format!("complexity {}", features.scalar_complexity),
            ),
            Instruction::OrderBy => {
                ("order_by", "present".to_string(), "absent".to_string())
            }
            Instruction::Distinct => {
                ("distinct", "present".to_string(), "absent".to_string())
            }
        };
        SpecViolation { constraint: constraint.into(), expected, actual }
    }
}

impl fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "constraint {} violated: expected {}, got {}",
            self.constraint, self.expected, self.actual
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_template;

    #[test]
    fn nl_parsing_recognizes_paper_instructions() {
        assert_eq!(
            Instruction::parse("The template should have a nested subquery"),
            Some(Instruction::NestedSubquery)
        );
        assert_eq!(
            Instruction::parse("use three predicate values"),
            Some(Instruction::NumPredicates(3))
        );
        assert_eq!(
            Instruction::parse("make sure to use the GROUP BY operator"),
            Some(Instruction::GroupBy)
        );
        assert_eq!(
            Instruction::parse("I want no joins in this one"),
            Some(Instruction::NoJoins)
        );
        assert_eq!(
            Instruction::parse("include complex scalar expressions"),
            Some(Instruction::ComplexScalarExpressions)
        );
        assert_eq!(Instruction::parse("make the weather sunny"), None);
    }

    #[test]
    fn numeric_predicate_counts_parse_digits_and_words() {
        assert_eq!(
            Instruction::parse("have 5 predicates"),
            Some(Instruction::NumPredicates(5))
        );
        assert_eq!(
            Instruction::parse("have two predicates"),
            Some(Instruction::NumPredicates(2))
        );
    }

    #[test]
    fn check_reports_every_violation() {
        let spec = TemplateSpec::new(1)
            .with_tables(2)
            .with_joins(1)
            .with_instruction(Instruction::GroupBy);
        let t = parse_template("SELECT x FROM t WHERE x > {p_1}").unwrap();
        let violations = spec.check(&t.features());
        let names: Vec<_> = violations.iter().map(|v| v.constraint.as_str()).collect();
        assert_eq!(names, vec!["num_tables_accessed", "num_joins", "group_by"]);
    }

    #[test]
    fn compliant_template_passes() {
        let spec = TemplateSpec::new(1)
            .with_tables(2)
            .with_joins(1)
            .with_aggregations(1)
            .with_instruction(Instruction::GroupBy)
            .with_instruction(Instruction::NumPredicates(1));
        let t = parse_template(
            "SELECT a.x, SUM(b.y) FROM a JOIN b ON a.id = b.id \
             WHERE b.z > {p_1} GROUP BY a.x",
        )
        .unwrap();
        assert!(spec.is_satisfied_by(&t.features()));
    }

    #[test]
    fn bi_spec_no_joins_complex_scalars() {
        let spec = TemplateSpec::new(2)
            .with_instruction(Instruction::NoJoins)
            .with_instruction(Instruction::ComplexScalarExpressions);
        let good = parse_template(
            "SELECT (a + b) * c, CASE WHEN a > 0 THEN a ELSE -a END FROM t WHERE a > {p_1}",
        )
        .unwrap();
        assert!(spec.is_satisfied_by(&good.features()));
        let bad = parse_template("SELECT a FROM t JOIN u ON t.id = u.id").unwrap();
        assert_eq!(spec.check(&bad.features()).len(), 2);
    }

    #[test]
    fn violation_display_is_feedback_ready() {
        let spec = TemplateSpec::new(1).with_joins(3);
        let t = parse_template("SELECT x FROM t").unwrap();
        let v = &spec.check(&t.features())[0];
        assert_eq!(v.to_string(), "constraint num_joins violated: expected 3, got 0");
    }

    #[test]
    fn declarative_parsing_handles_mixed_forms() {
        let spec = TemplateSpec::parse_declarative(
            7,
            "tables=2 joins=1; have two predicate values",
        );
        assert_eq!(spec.id, 7);
        assert_eq!(spec.num_tables, Some(2));
        assert_eq!(spec.num_joins, Some(1));
        assert_eq!(spec.num_aggregations, None);
        assert_eq!(spec.instructions, vec![Instruction::NumPredicates(2)]);

        // pure natural language, no key=value segment
        let nl_only = TemplateSpec::parse_declarative(1, "include a nested subquery");
        assert_eq!(nl_only.instructions, vec![Instruction::NestedSubquery]);

        // aggs alias
        let aliased = TemplateSpec::parse_declarative(1, "aggs=3");
        assert_eq!(aliased.num_aggregations, Some(3));
    }

    #[test]
    fn with_nl_instruction_ignores_unknown_sentences() {
        let spec = TemplateSpec::new(1)
            .with_nl_instruction("have a nested subquery")
            .with_nl_instruction("be fast please");
        assert_eq!(spec.instructions, vec![Instruction::NestedSubquery]);
    }
}
