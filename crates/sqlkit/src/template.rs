//! SQL templates: statements containing `{p_i}` placeholders.
//!
//! Implements Definitions 2.1–2.3 of the paper: a template cannot be
//! executed directly; instantiating it by substituting predicate values for
//! every placeholder yields an executable query.

use crate::ast::{Expr, Select, Value};
use crate::error::SqlError;
use crate::features::TemplateFeatures;
use std::collections::HashMap;
use std::fmt;

/// A SQL template (Definition 2.1).
///
/// Wraps a [`Select`] that may contain [`Expr::Placeholder`] nodes anywhere
/// an expression is legal — including inside nested subqueries.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    select: Select,
}

impl Template {
    /// Wrap a parsed statement as a template.
    pub fn new(select: Select) -> Self {
        Template { select }
    }

    /// Borrow the underlying statement.
    pub fn select(&self) -> &Select {
        &self.select
    }

    /// Consume the template, returning the statement.
    pub fn into_select(self) -> Select {
        self.select
    }

    /// Sorted, de-duplicated placeholder ids, collected recursively through
    /// subquery bodies.
    pub fn placeholders(&self) -> Vec<u32> {
        let mut ids = Vec::new();
        collect_placeholders(&self.select, &mut ids);
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Number of distinct placeholders.
    pub fn arity(&self) -> usize {
        self.placeholders().len()
    }

    /// True when the template has no placeholders (i.e. it is already an
    /// executable query per Definition 2.3).
    pub fn is_ground(&self) -> bool {
        self.placeholders().is_empty()
    }

    /// Instantiate the template into an executable statement by replacing
    /// every placeholder with its bound value (Definition 2.3).
    ///
    /// Every placeholder in the template must have a binding; extra
    /// bindings are ignored, which lets callers sample one joint value
    /// vector for a whole template family.
    pub fn instantiate(&self, values: &HashMap<u32, Value>) -> Result<Select, SqlError> {
        for id in self.placeholders() {
            if !values.contains_key(&id) {
                return Err(SqlError::MissingPlaceholder(id));
            }
        }
        let mut select = self.select.clone();
        select.walk_exprs_mut(&mut |expr| {
            if let Expr::Placeholder(id) = expr {
                if let Some(value) = values.get(id) {
                    *expr = Expr::Literal(value.clone());
                }
            }
        });
        Ok(select)
    }

    /// Like [`Template::instantiate`] but also rejects bindings for
    /// placeholders that do not occur in the template.
    pub fn instantiate_strict(&self, values: &HashMap<u32, Value>) -> Result<Select, SqlError> {
        let known = self.placeholders();
        // Report the *smallest* unknown id so the error is independent of
        // the map's iteration order.
        if let Some(id) =
            values.keys().copied().filter(|id| !known.contains(id)).min()
        {
            return Err(SqlError::UnknownPlaceholder(id));
        }
        self.instantiate(values)
    }

    /// Structural features of the template (table/join/aggregation counts,
    /// nested-subquery presence, …), used for specification validation.
    pub fn features(&self) -> TemplateFeatures {
        TemplateFeatures::of(&self.select)
    }

    /// SQL text of the template, with `{p_i}` placeholder syntax.
    pub fn sql(&self) -> String {
        self.select.to_string()
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.select)
    }
}

fn collect_placeholders(select: &Select, ids: &mut Vec<u32>) {
    select.walk_exprs(&mut |expr| {
        if let Expr::Placeholder(id) = expr {
            ids.push(*id);
        }
    });
    for sub in select.subqueries() {
        collect_placeholders(sub, ids);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_template;

    #[test]
    fn placeholders_are_sorted_and_deduped() {
        let t = parse_template(
            "SELECT * FROM t WHERE a > {p_3} AND b < {p_1} AND c BETWEEN {p_1} AND {p_3}",
        )
        .unwrap();
        assert_eq!(t.placeholders(), vec![1, 3]);
        assert_eq!(t.arity(), 2);
    }

    #[test]
    fn placeholders_found_inside_subqueries() {
        let t = parse_template(
            "SELECT * FROM a WHERE x IN (SELECT y FROM b WHERE z > {p_2})",
        )
        .unwrap();
        assert_eq!(t.placeholders(), vec![2]);
    }

    #[test]
    fn instantiate_replaces_all_occurrences() {
        let t = parse_template("SELECT * FROM t WHERE a > {p_1} AND b < {p_1}").unwrap();
        let q = t
            .instantiate(&[(1, Value::Int(10))].into_iter().collect())
            .unwrap();
        let text = q.to_string();
        assert!(!text.contains("{p_"));
        assert_eq!(text.matches("10").count(), 2);
    }

    #[test]
    fn instantiate_reaches_nested_subqueries() {
        let t = parse_template(
            "SELECT * FROM a WHERE x IN (SELECT y FROM b WHERE z > {p_1})",
        )
        .unwrap();
        let q = t
            .instantiate(&[(1, Value::Float(2.5))].into_iter().collect())
            .unwrap();
        assert!(!q.to_string().contains("{p_"));
    }

    #[test]
    fn missing_binding_is_an_error() {
        let t = parse_template("SELECT * FROM t WHERE a > {p_1}").unwrap();
        let err = t.instantiate(&HashMap::new()).unwrap_err();
        assert_eq!(err, SqlError::MissingPlaceholder(1));
    }

    #[test]
    fn strict_instantiation_rejects_extras() {
        let t = parse_template("SELECT * FROM t WHERE a > {p_1}").unwrap();
        let values: HashMap<u32, Value> =
            [(1, Value::Int(1)), (9, Value::Int(9))].into_iter().collect();
        assert_eq!(
            t.instantiate_strict(&values).unwrap_err(),
            SqlError::UnknownPlaceholder(9)
        );
        assert!(t.instantiate(&values).is_ok());
    }

    #[test]
    fn ground_template_is_directly_executable() {
        let t = parse_template("SELECT * FROM t WHERE a > 5").unwrap();
        assert!(t.is_ground());
        assert!(t.instantiate(&HashMap::new()).is_ok());
    }
}
