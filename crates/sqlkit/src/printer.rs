//! SQL pretty-printer.
//!
//! `Display` for [`Select`] and [`Expr`] emits SQL text that the
//! [`crate::parser`] parses back to an identical tree (`parse ∘ print =
//! id`), which the round-trip property tests enforce. Printing is
//! precedence-aware so the output reads like hand-written SQL rather than a
//! fully-parenthesized dump — this matters because the text is embedded in
//! LLM prompts.

use crate::ast::*;
use std::fmt;

/// Operator precedence used to decide parenthesization. Larger binds
/// tighter. Mirrors the parser's grammar levels.
fn precedence(op: BinaryOp) -> u8 {
    use BinaryOp::*;
    match op {
        Or => 1,
        And => 2,
        Eq | NotEq | Lt | LtEq | Gt | GtEq => 4,
        Add | Sub => 5,
        Mul | Div | Mod => 6,
    }
}

/// Precedence of an expression node when appearing as an operand.
fn expr_precedence(expr: &Expr) -> u8 {
    match expr {
        Expr::Binary { op, .. } => precedence(*op),
        Expr::Unary { op: UnaryOp::Not, .. } => 3,
        // postfix predicates parse at comparison level
        Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Like { .. }
        | Expr::IsNull { .. } => 4,
        Expr::Unary { op: UnaryOp::Neg, .. } => 7,
        _ => 8, // primaries never need parens
    }
}

struct ExprPrinter<'a> {
    expr: &'a Expr,
    /// Minimum precedence this position requires without parentheses.
    min_prec: u8,
}

impl fmt::Display for ExprPrinter<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if expr_precedence(self.expr) < self.min_prec {
            write!(f, "({})", self.expr)
        } else {
            write!(f, "{}", self.expr)
        }
    }
}

fn operand(expr: &Expr, min_prec: u8) -> ExprPrinter<'_> {
    ExprPrinter { expr, min_prec }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Placeholder(id) => write!(f, "{{p_{id}}}"),
            Expr::Wildcard => write!(f, "*"),
            Expr::Unary { op: UnaryOp::Neg, expr } => {
                // `--x` would lex as a line comment; parenthesize nested
                // negations.
                if matches!(**expr, Expr::Unary { op: UnaryOp::Neg, .. }) {
                    write!(f, "-({})", expr)
                } else {
                    write!(f, "-{}", operand(expr, 7))
                }
            }
            Expr::Unary { op: UnaryOp::Not, expr } => {
                write!(f, "NOT {}", operand(expr, 3))
            }
            Expr::Binary { left, op, right } => {
                let prec = precedence(*op);
                // left-associative: right operand needs strictly higher
                // precedence for non-commutative chains to re-parse
                // identically.
                write!(
                    f,
                    "{} {} {}",
                    operand(left, prec),
                    op.symbol(),
                    operand(right, prec + 1)
                )
            }
            Expr::Between { expr, negated, low, high } => write!(
                f,
                "{} {}BETWEEN {} AND {}",
                operand(expr, 5),
                if *negated { "NOT " } else { "" },
                operand(low, 5),
                operand(high, 5)
            ),
            Expr::InList { expr, negated, list } => {
                write!(f, "{} {}IN (", operand(expr, 5), if *negated { "NOT " } else { "" })?;
                for (i, item) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            Expr::InSubquery { expr, negated, subquery } => write!(
                f,
                "{} {}IN ({subquery})",
                operand(expr, 5),
                if *negated { "NOT " } else { "" }
            ),
            Expr::ScalarSubquery(sq) => write!(f, "({sq})"),
            Expr::Exists { negated, subquery } => {
                write!(f, "{}EXISTS ({subquery})", if *negated { "NOT " } else { "" })
            }
            Expr::Like { expr, negated, pattern } => write!(
                f,
                "{} {}LIKE {}",
                operand(expr, 5),
                if *negated { "NOT " } else { "" },
                operand(pattern, 5)
            ),
            Expr::IsNull { expr, negated } => write!(
                f,
                "{} IS {}NULL",
                operand(expr, 5),
                if *negated { "NOT " } else { "" }
            ),
            Expr::Function { name, distinct, args } => {
                write!(f, "{name}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                write!(f, ")")
            }
            Expr::Case { operand: op, branches, else_branch } => {
                write!(f, "CASE")?;
                if let Some(op) = op {
                    write!(f, " {op}")?;
                }
                for (when, then) in branches {
                    write!(f, " WHEN {when} THEN {then}")?;
                }
                if let Some(e) = else_branch {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} AS {a}", self.table),
            None => write!(f, "{}", self.table),
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.projections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", item.expr)?;
            if let Some(alias) = &item.alias {
                write!(f, " AS {alias}")?;
            }
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        for join in &self.joins {
            match join.kind {
                JoinKind::Inner => write!(f, " JOIN {}", join.table)?,
                JoinKind::Left => write!(f, " LEFT JOIN {}", join.table)?,
                JoinKind::Cross => write!(f, " CROSS JOIN {}", join.table)?,
            }
            if let Some(on) = &join.on {
                write!(f, " ON {on}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.expr)?;
                if !o.ascending {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    
    use crate::parser::parse_select;

    fn round_trip(sql: &str) {
        let ast = parse_select(sql).unwrap();
        let printed = ast.to_string();
        let reparsed = parse_select(&printed)
            .unwrap_or_else(|e| panic!("printed SQL failed to parse: {printed}: {e}"));
        assert_eq!(ast, reparsed, "round-trip mismatch for: {printed}");
    }

    #[test]
    fn round_trips_simple_select() {
        round_trip("SELECT a, b FROM t WHERE a > 1 AND b < 2");
    }

    #[test]
    fn round_trips_paper_example() {
        round_trip(
            "SELECT u.user_name, SUM(o.order_amount) FROM users AS u \
             JOIN orders AS o ON u.user_id = o.user_id \
             WHERE u.user_id IN (SELECT user_id FROM orders GROUP BY user_id \
             HAVING COUNT(order_id) > {p_1}) AND o.order_amount >= {p_2}",
        );
    }

    #[test]
    fn round_trips_arithmetic_with_parens() {
        round_trip("SELECT (a + b) * c - d / e FROM t");
        round_trip("SELECT a - (b - c) FROM t");
        round_trip("SELECT a / (b * c) FROM t");
    }

    #[test]
    fn round_trips_boolean_nesting() {
        round_trip("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3");
        round_trip("SELECT * FROM t WHERE NOT (a = 1 AND b = 2)");
    }

    #[test]
    fn round_trips_case_and_functions() {
        round_trip(
            "SELECT CASE WHEN x > 0 THEN 1 ELSE 0 END, ABS(y), COUNT(DISTINCT z) \
             FROM t GROUP BY x ORDER BY x DESC LIMIT 5",
        );
    }

    #[test]
    fn round_trips_predicates() {
        round_trip(
            "SELECT * FROM t WHERE a BETWEEN {p_1} AND {p_2} AND b NOT LIKE 'x%' \
             AND c IS NOT NULL AND d IN (1, 2, 3)",
        );
    }

    #[test]
    fn prints_placeholder_syntax() {
        let ast = parse_select("SELECT * FROM t WHERE a > {p_3}").unwrap();
        assert!(ast.to_string().contains("{p_3}"));
    }

    #[test]
    fn negative_literal_prints_and_reparses() {
        round_trip("SELECT -1, -(a + b) FROM t WHERE x > -5");
    }
}
