//! Structural feature extraction for SQL templates.
//!
//! [`TemplateFeatures`] captures exactly the properties the paper's
//! specifications constrain (Definition 2.5): number of tables accessed,
//! joins, aggregations, predicates, plus structural flags such as the
//! presence of nested subqueries, `GROUP BY`, and complex scalar
//! expressions. The synthetic LLM's `ValidateSemantics` and the template
//! alignment metric both reduce to comparing these features against a
//! [`crate::spec::TemplateSpec`].

use crate::ast::{Expr, Select};
use std::collections::BTreeSet;

/// Structural summary of a template or query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TemplateFeatures {
    /// Distinct base tables accessed anywhere in the statement, including
    /// subqueries. Counted by table name, not alias, so self-joins count
    /// once (matching how the Redset profiles count `num_tables_accessed`).
    pub num_tables: u32,
    /// `JOIN` steps across the statement and its subqueries (any kind).
    pub num_joins: u32,
    /// Aggregate function calls (`COUNT`/`SUM`/`AVG`/`MIN`/`MAX`) anywhere.
    pub num_aggregations: u32,
    /// Leaf predicates in `WHERE`/`HAVING`/`ON` clauses: comparisons,
    /// `BETWEEN`, `IN`, `LIKE`, `IS NULL`, `EXISTS`.
    pub num_predicates: u32,
    /// Distinct `{p_i}` placeholders.
    pub num_placeholders: u32,
    /// Number of subquery bodies (`IN (SELECT…)`, scalar, `EXISTS`).
    pub num_subqueries: u32,
    /// Non-aggregate scalar-expression complexity of the `SELECT` list:
    /// count of arithmetic operators, `CASE` expressions, and scalar
    /// function calls in projections (the property BI-style specs target).
    pub scalar_complexity: u32,
    /// `GROUP BY` present at any level.
    pub has_group_by: bool,
    /// `ORDER BY` present at the top level.
    pub has_order_by: bool,
    /// `LIMIT` present at the top level.
    pub has_limit: bool,
    /// `DISTINCT` present at the top level.
    pub has_distinct: bool,
}

impl TemplateFeatures {
    /// Compute features for a statement, recursing through subqueries.
    pub fn of(select: &Select) -> TemplateFeatures {
        let mut features = TemplateFeatures::default();
        let mut tables = BTreeSet::new();
        let mut placeholders = BTreeSet::new();
        accumulate(select, true, &mut features, &mut tables, &mut placeholders);
        features.num_tables = tables.len() as u32;
        features.num_placeholders = placeholders.len() as u32;
        features
    }

    /// True if the statement contains any nested subquery.
    pub fn has_nested_subquery(&self) -> bool {
        self.num_subqueries > 0
    }
}

fn accumulate(
    select: &Select,
    top_level: bool,
    features: &mut TemplateFeatures,
    tables: &mut BTreeSet<String>,
    placeholders: &mut BTreeSet<u32>,
) {
    for table_ref in select.table_refs() {
        tables.insert(table_ref.table.clone());
    }
    features.num_joins += select.joins.len() as u32;
    if !select.group_by.is_empty() {
        features.has_group_by = true;
    }
    if top_level {
        features.has_order_by = !select.order_by.is_empty();
        features.has_limit = select.limit.is_some();
        features.has_distinct = select.distinct;
    }

    // Scalar complexity of the SELECT list (non-aggregate structure only).
    for item in &select.projections {
        features.scalar_complexity += scalar_complexity(&item.expr);
    }

    // Aggregations and placeholders anywhere in this level's expressions.
    select.walk_exprs(&mut |expr| {
        if expr.is_aggregate() {
            features.num_aggregations += 1;
        }
        if let Expr::Placeholder(id) = expr {
            placeholders.insert(*id);
        }
    });

    // Predicates in the filtering clauses.
    for join in &select.joins {
        if let Some(on) = &join.on {
            features.num_predicates += count_predicates(on);
        }
    }
    if let Some(w) = &select.where_clause {
        features.num_predicates += count_predicates(w);
    }
    if let Some(h) = &select.having {
        features.num_predicates += count_predicates(h);
    }

    for sub in select.subqueries() {
        features.num_subqueries += 1;
        accumulate(sub, false, features, tables, placeholders);
    }
}

/// Count leaf predicates within a boolean expression tree.
fn count_predicates(expr: &Expr) -> u32 {
    let mut count = 0;
    expr.walk(&mut |e| match e {
        Expr::Binary { op, .. } if op.is_comparison() => count += 1,
        Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Like { .. }
        | Expr::IsNull { .. } => count += 1,
        _ => {}
    });
    // EXISTS nodes are not visited by walk's leaf cases above.
    expr.walk(&mut |e| {
        if matches!(e, Expr::Exists { .. }) {
            count += 1;
        }
    });
    count
}

/// Complexity score for a scalar (projection) expression: arithmetic
/// operators + CASE nodes + scalar (non-aggregate) function calls.
fn scalar_complexity(expr: &Expr) -> u32 {
    let mut score = 0;
    expr.walk(&mut |e| match e {
        Expr::Binary { op, .. } if op.is_arithmetic() => score += 1,
        Expr::Case { .. } => score += 1,
        Expr::Function { .. } if !e.is_aggregate() => score += 1,
        _ => {}
    });
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;

    fn features(sql: &str) -> TemplateFeatures {
        TemplateFeatures::of(&parse_select(sql).unwrap())
    }

    #[test]
    fn counts_tables_joins_aggregations() {
        let f = features(
            "SELECT a.x, SUM(b.y), COUNT(*) FROM a JOIN b ON a.id = b.id \
             JOIN c ON b.id = c.id GROUP BY a.x",
        );
        assert_eq!(f.num_tables, 3);
        assert_eq!(f.num_joins, 2);
        assert_eq!(f.num_aggregations, 2);
        assert!(f.has_group_by);
    }

    #[test]
    fn self_join_counts_one_table() {
        let f = features("SELECT * FROM t AS t1 JOIN t AS t2 ON t1.x = t2.y");
        assert_eq!(f.num_tables, 1);
        assert_eq!(f.num_joins, 1);
    }

    #[test]
    fn subquery_tables_and_joins_are_included() {
        let f = features(
            "SELECT * FROM a WHERE a.x IN \
             (SELECT b.x FROM b JOIN c ON b.id = c.id WHERE c.y > {p_1})",
        );
        assert_eq!(f.num_tables, 3);
        assert_eq!(f.num_joins, 1);
        assert_eq!(f.num_subqueries, 1);
        assert!(f.has_nested_subquery());
        assert_eq!(f.num_placeholders, 1);
    }

    #[test]
    fn predicate_counting_covers_all_kinds() {
        let f = features(
            "SELECT * FROM t JOIN u ON t.id = u.id \
             WHERE t.a > 1 AND t.b BETWEEN 1 AND 2 AND t.c IN (1,2) \
             AND t.d LIKE 'x%' AND t.e IS NULL",
        );
        // ON: 1, WHERE: 5 leaf predicates
        assert_eq!(f.num_predicates, 6);
    }

    #[test]
    fn having_predicates_are_counted() {
        let f = features("SELECT x FROM t GROUP BY x HAVING COUNT(*) > 3");
        assert_eq!(f.num_predicates, 1);
        assert_eq!(f.num_aggregations, 1);
    }

    #[test]
    fn scalar_complexity_only_counts_projection_structure() {
        let simple = features("SELECT x FROM t WHERE x + 1 > 2");
        assert_eq!(simple.scalar_complexity, 0);
        let complex = features(
            "SELECT (a + b) * c, CASE WHEN a > 0 THEN 1 ELSE 0 END, ROUND(d / e, 2) FROM t",
        );
        // (a+b)*c → 2 arithmetic; CASE → 1; ROUND → 1 fn + 1 division = 2
        assert_eq!(complex.scalar_complexity, 5);
    }

    #[test]
    fn aggregates_do_not_count_as_scalar_complexity() {
        let f = features("SELECT SUM(x), COUNT(*) FROM t");
        assert_eq!(f.scalar_complexity, 0);
        assert_eq!(f.num_aggregations, 2);
    }

    #[test]
    fn top_level_flags() {
        let f = features("SELECT DISTINCT x FROM t ORDER BY x LIMIT 5");
        assert!(f.has_distinct);
        assert!(f.has_order_by);
        assert!(f.has_limit);
        assert!(!f.has_group_by);
    }

    #[test]
    fn exists_counts_as_predicate_and_subquery() {
        let f = features("SELECT * FROM a WHERE EXISTS (SELECT * FROM b WHERE b.x = 1)");
        assert_eq!(f.num_subqueries, 1);
        // EXISTS itself + b.x = 1 inside
        assert_eq!(f.num_predicates, 2);
    }
}
