//! # sqlkit — SQL toolkit for SQLBarber-RS
//!
//! A self-contained SQL frontend covering the subset of SQL that SQLBarber
//! (Lao & Trummer, SIGMOD 2025) generates, validates, and instantiates:
//!
//! * an [`ast`] for `SELECT` statements with joins, aggregations, `GROUP
//!   BY`/`HAVING`, `ORDER BY`/`LIMIT`, nested subqueries, and rich scalar
//!   expressions;
//! * a hand-written [`lexer`] and recursive-descent [`parser`] with
//!   positioned error messages (these are the "DBMS error messages" fed back
//!   into the check-and-rewrite loop of Algorithm 1);
//! * a pretty-[`printer`] such that `parse(print(ast)) == ast`;
//! * [`template`]s: statements containing `{p_i}` placeholders that are
//!   instantiated into executable queries by substituting predicate values
//!   (Definitions 2.1–2.3 of the paper);
//! * structural [`features`] extraction (table/join/aggregation counts,
//!   nested-subquery detection, …) used to validate templates against
//!   user [`spec`]ifications (Definition 2.5).
//!
//! The crate is deliberately independent of the execution engine
//! (`minidb`) and of the generation pipeline (`sqlbarber`), so it can be
//! reused as a general template-manipulation library.
//!
//! ## Example
//!
//! ```
//! use sqlkit::{parse_template, Value};
//!
//! let template = parse_template(
//!     "SELECT o.o_custkey, SUM(o.o_totalprice) \
//!      FROM orders AS o WHERE o.o_totalprice > {p_1} \
//!      GROUP BY o.o_custkey",
//! ).unwrap();
//! assert_eq!(template.placeholders(), vec![1]);
//!
//! let query = template.instantiate(&[(1, Value::Float(500.0))].into_iter().collect()).unwrap();
//! assert!(query.to_string().contains("> 500"));
//!
//! let features = template.features();
//! assert_eq!(features.num_tables, 1);
//! assert_eq!(features.num_aggregations, 1);
//! assert!(features.has_group_by);
//! ```

pub mod ast;
pub mod error;
pub mod features;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod spec;
pub mod template;

pub use ast::{
    BinaryOp, ColumnRef, Expr, Join, JoinKind, OrderByItem, Select, SelectItem, TableRef, UnaryOp,
    Value,
};
pub use error::{ParseError, SqlError};
pub use features::TemplateFeatures;
pub use parser::{parse_select, parse_template};
pub use spec::{Instruction, SpecViolation, TemplateSpec};
pub use template::Template;
