//! `sqlbarber` — command-line workload generator.
//!
//! ```text
//! sqlbarber generate [--db tpch|imdb] [--scale F] [--benchmark NAME]
//!                    [--distribution uniform|normal|snowset-card-1|snowset-card-2|snowset-cost|redset-cost]
//!                    [--samples FILE] [--queries N] [--intervals K]
//!                    [--range LO HI]
//!                    [--cost-type cardinality|plan-cost|actual-cardinality|execution-time]
//!                    [--spec "tables=2 joins=1; use GROUP BY"]... [--seed S]
//!                    [--threads N] [--bo-rounds-concurrency K]
//!                    [--transport-faults R] [--retry-budget N]
//!                    [--no-prepared] [--no-columnar]
//!                    [--no-circuit-breaker] [--out PREFIX]
//!                    [--amplify N] [--amplify-shards K] [--amplify-batch N]
//!                    [--amplify-out PATH]
//!                    [--checkpoint-dir DIR] [--checkpoint-every K]
//!                    [--resume DIR] [--kill-at POINT[:MODE]]
//! sqlbarber schema   [--db tpch|imdb] [--scale F]
//! sqlbarber explain  [--db tpch|imdb] [--scale F] --sql "SELECT …" [--analyze]
//! ```
//!
//! `generate` writes `PREFIX.sql` (replayable statements) and
//! `PREFIX.json` (machine-readable manifest). With `--samples`, the target
//! distribution is built from observed costs (one number per line) — the
//! paper's production-statistics scenario.

use sqlbarber::{CostType, SqlBarber, SqlBarberConfig};
use sqlkit::TemplateSpec;
use workload::distribution::TargetDistribution;
use workload::CostIntervals;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("schema") => schema(&args[1..]),
        Some("explain") => explain(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{}", HELP);
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`; see --help");
            2
        }
    };
    std::process::exit(code);
}

const HELP: &str = "\
sqlbarber — generate customized and realistic SQL workloads

USAGE:
  sqlbarber generate [OPTIONS]      generate a workload
  sqlbarber schema   [OPTIONS]      print the database schema summary
  sqlbarber explain  [OPTIONS]      plan (and optionally run) one statement

COMMON OPTIONS:
  --db tpch|imdb          database to generate against      [default: tpch]
  --scale F               dataset scale factor/multiplier   [default: 0.05 / 4.0]
  --seed S                master seed                       [default: 42]
  --threads N             cost-oracle / surrogate worker threads;
                          0 = all available cores           [default: 0]

GENERATE OPTIONS:
  --benchmark NAME        one of the ten Table-1 benchmarks (sets
                          distribution, queries, and intervals)
  --distribution D        uniform|normal|snowset-card-1|snowset-card-2|
                          snowset-cost|redset-cost          [default: uniform]
  --samples FILE          build the target from observed costs
                          (one number per line) instead of a named shape
  --queries N             workload size                     [default: 1000]
  --intervals K           cost intervals                    [default: 10]
  --range LO HI           working cost range                [default: 0 10000]
  --cost-type T           cardinality|plan-cost|actual-cardinality|
                          execution-time (execution-based types cost by
                          running statements through the vectorized
                          batch executor)    [default: cardinality]
  --spec \"...\"            declarative template spec, repeatable;
                          e.g. \"tables=2 joins=1; use GROUP BY\"
                          (default: the 24 Redset template profiles)
  --no-prepared           disable the prepared-plan fast path (plan every
                          probe from scratch; output is bit-identical)
  --no-columnar           disable the columnar batch fast path — recost
                          and vectorized-execution alike (cost each probe
                          one at a time; output and oracle stats are
                          bit-identical)
  --bo-rounds-concurrency K
                          pin the deficit scheduler to K concurrent
                          (interval, template) searches per round; 0 lets
                          the deficit profile choose (output is
                          bit-identical either way)    [default: 0]
  --transport-faults R    inject LLM transport faults (timeouts, rate
                          limits, truncation, 5xx, bursts) at rate R in
                          [0,1]; deterministic per seed    [default: 0]
  --retry-budget N        total extra LLM attempts the retry layer may
                          spend across the run             [default: 1000]
  --no-circuit-breaker    disable the circuit breaker (retries still
                          apply; sustained outages are ridden out
                          call-by-call instead of failing fast)
  --out PREFIX            write PREFIX.sql and PREFIX.json  [default: workload]
  --amplify N             after convergence, stream N additional
                          cost-matched queries fitted from the accepted
                          probes (near-zero oracle calls; bit-identical
                          at any --threads / --amplify-shards; supports
                          all four cost types)              [default: 0]
  --amplify-shards K      emission shards costed speculatively per wave;
                          0 = thread count (never changes output)
                                                            [default: 0]
  --amplify-batch N       candidates per amplification mini-batch; part
                          of the deterministic output function (unlike
                          shards/threads), so compare runs only at equal
                          batch sizes. Smaller batches bound the work of
                          execution-based cost types   [default: 1024]
  --amplify-out PATH      amplified workload file (written atomically:
                          temp file + rename, so a crash never clobbers
                          an existing file) [default: PREFIX.amplified.sql]
  --checkpoint-dir DIR    write durable pipeline snapshots into DIR at
                          every phase boundary (and mid-search, see
                          --checkpoint-every); DIR is created, but its
                          parent must exist
  --checkpoint-every K    mid-search snapshot cadence in scheduler rounds
                                                            [default: 8]
  --resume DIR            resume from the newest intact snapshot in DIR
                          (same config/target/seed required; output is
                          byte-identical to an uninterrupted run);
                          snapshots keep being written into DIR
  --kill-at POINT[:MODE]  chaos harness: die at the first occurrence of
                          POINT (after-templates|after-profiling|
                          after-refine|mid-search|after-search), right
                          after its checkpoint; MODE is unwind (clean
                          error, default) or abort (process abort)

EXPLAIN OPTIONS:
  --sql \"SELECT ...\"      statement to plan
  --analyze               also execute and report actuals
";

struct Flags {
    values: Vec<(String, Vec<String>)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut values: Vec<(String, Vec<String>)> = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let flag = &args[i];
            if !flag.starts_with("--") {
                return Err(format!("unexpected argument `{flag}`"));
            }
            let arity = match flag.as_str() {
                "--analyze" | "--no-prepared" | "--no-columnar" | "--no-circuit-breaker" => 0,
                "--range" => 2,
                _ => 1,
            };
            if i + arity >= args.len() + usize::from(arity == 0) {
                return Err(format!("missing value for `{flag}`"));
            }
            let flag_values = args[i + 1..i + 1 + arity].to_vec();
            values.push((flag.clone(), flag_values));
            i += 1 + arity;
        }
        Ok(Flags { values })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(flag, _)| flag == name)
            .and_then(|(_, v)| v.first())
            .map(String::as_str)
    }

    fn get_all(&self, name: &str) -> Vec<&str> {
        self.values
            .iter()
            .filter(|(flag, _)| flag == name)
            .filter_map(|(_, v)| v.first())
            .map(String::as_str)
            .collect()
    }

    fn has(&self, name: &str) -> bool {
        self.values.iter().any(|(flag, _)| flag == name)
    }

    fn get_pair(&self, name: &str) -> Option<(&str, &str)> {
        self.values
            .iter()
            .rev()
            .find(|(flag, _)| flag == name)
            .and_then(|(_, v)| Some((v.first()?.as_str(), v.get(1)?.as_str())))
    }

    /// `--flag V` parsed as `T`: absent means `default`, present but
    /// malformed is a usage error — never a silent fallback.
    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value `{raw}` for `{name}`")),
        }
    }

    /// Like [`Flags::parsed`] but with no default: absent means `None`.
    fn parsed_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value `{raw}` for `{name}`")),
        }
    }

    /// `--flag A B` with both values parsed as `T`.
    fn parsed_pair<T: std::str::FromStr>(
        &self,
        name: &str,
        default: (T, T),
    ) -> Result<(T, T), String> {
        match self.get_pair(name) {
            None => Ok(default),
            Some((a, b)) => {
                let a = a
                    .parse()
                    .map_err(|_| format!("invalid value `{a}` for `{name}`"))?;
                let b = b
                    .parse()
                    .map_err(|_| format!("invalid value `{b}` for `{name}`"))?;
                Ok((a, b))
            }
        }
    }
}

/// Unwrap a `Result` from flag parsing inside a `fn(..) -> i32` command,
/// printing the error and exiting with the usage status on failure.
macro_rules! try_flag {
    ($expr:expr) => {
        match $expr {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    };
}

fn load_db(flags: &Flags) -> Result<minidb::Database, String> {
    let db = flags.get("--db").unwrap_or("tpch");
    Ok(match db {
        "imdb" => {
            let scale = flags.parsed("--scale", 4.0)?;
            minidb::datagen::imdb::generate(minidb::datagen::imdb::ImdbConfig {
                scale,
                seed: 1337,
            })
        }
        "tpch" => {
            let scale = flags.parsed("--scale", 0.05)?;
            minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig {
                scale_factor: scale,
                seed: 42,
            })
        }
        other => return Err(format!("unknown --db `{other}` (one of tpch, imdb)")),
    })
}

fn generate(args: &[String]) -> i32 {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let seed: u64 = try_flag!(flags.parsed("--seed", 42));
    // Validate cheap inputs before paying for database generation.
    if let Some(name) = flags.get("--benchmark") {
        if workload::benchmark_by_name(name).is_none() {
            eprintln!("unknown benchmark `{name}`; run `figures table1` for the registry");
            return 2;
        }
    }
    let fault_rate: f64 = try_flag!(flags.parsed("--transport-faults", 0.0));
    if !(0.0..=1.0).contains(&fault_rate) {
        eprintln!("--transport-faults must be in [0, 1], got {fault_rate}");
        return 2;
    }
    // Validate output/checkpoint paths now, not after a long run.
    let prefix = flags.get("--out").unwrap_or("workload").to_string();
    let amplify_n: u64 = try_flag!(flags.parsed("--amplify", 0));
    let amplify_out = flags
        .get("--amplify-out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from(format!("{prefix}.amplified.sql")));
    if amplify_n > 0 {
        if let Some(parent) = amplify_out.parent() {
            if !parent.as_os_str().is_empty() && !parent.is_dir() {
                eprintln!(
                    "cannot write --amplify-out {}: parent directory {} does \
                     not exist (create it first)",
                    amplify_out.display(),
                    parent.display()
                );
                return 2;
            }
        }
    }
    let resume_dir = flags.get("--resume").map(std::path::PathBuf::from);
    // A resumed run keeps checkpointing into the directory it came from
    // unless a different one is given explicitly.
    let checkpoint_dir = flags
        .get("--checkpoint-dir")
        .map(std::path::PathBuf::from)
        .or_else(|| resume_dir.clone());
    let checkpoint_every: u64 = try_flag!(flags.parsed("--checkpoint-every", 8));
    if let Some(dir) = &checkpoint_dir {
        if !dir.is_dir() {
            if let Some(parent) = dir.parent() {
                if !parent.as_os_str().is_empty() && !parent.is_dir() {
                    eprintln!(
                        "cannot create --checkpoint-dir {}: parent directory \
                         {} does not exist (create it first)",
                        dir.display(),
                        parent.display()
                    );
                    return 2;
                }
            }
        }
    }
    let kill = match flags.get("--kill-at") {
        Some(spec) => match sqlbarber::KillSwitch::parse(spec) {
            Ok(kill) => Some(kill),
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        },
        None => None,
    };
    eprintln!("loading database…");
    let db = try_flag!(load_db(&flags));

    // Target distribution.
    let queries: usize = try_flag!(flags.parsed("--queries", 1000));
    let intervals_n: usize = try_flag!(flags.parsed("--intervals", 10));
    let (lo, hi) = try_flag!(flags.parsed_pair("--range", (0.0, 10_000.0)));
    let grid = CostIntervals::new(lo, hi, intervals_n);

    let (target, cost_type) = if let Some(name) = flags.get("--benchmark") {
        let Some(bench) = workload::benchmark_by_name(name) else {
            eprintln!("unknown benchmark `{name}`; see `figures table1` for the registry");
            return 2;
        };
        let cost_type = CostType::from_benchmark(
            bench.cost_type,
            flags.get("--cost-type").unwrap_or("cardinality") == "cardinality",
        );
        (bench.target(), cost_type)
    } else {
        let target = if let Some(path) = flags.get("--samples") {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return 2;
                }
            };
            let samples: Vec<f64> =
                text.lines().filter_map(|l| l.trim().parse().ok()).collect();
            if samples.is_empty() {
                eprintln!("{path} holds no numeric samples");
                return 2;
            }
            if grid.histogram(&samples).iter().sum::<f64>() == 0.0 {
                eprintln!(
                    "no sample in {path} falls inside the target range [{lo}, {hi}]"
                );
                return 2;
            }
            TargetDistribution::from_samples(&samples, grid, queries)
        } else {
            match flags.get("--distribution").unwrap_or("uniform") {
                "uniform" => TargetDistribution::uniform(grid, queries),
                "normal" => TargetDistribution::normal(grid, queries),
                "snowset-card-1" => TargetDistribution::snowset_card_1(grid, queries),
                "snowset-card-2" => TargetDistribution::snowset_card_2(grid, queries),
                "snowset-cost" => TargetDistribution::snowset_cost(grid, queries),
                "redset-cost" => TargetDistribution::redset_cost(grid, queries),
                other => {
                    eprintln!("unknown distribution `{other}`");
                    return 2;
                }
            }
        };
        let cost_type = match flags.get("--cost-type").unwrap_or("cardinality") {
            "cardinality" => CostType::Cardinality,
            "plan-cost" => CostType::PlanCost,
            "actual-cardinality" => CostType::ActualCardinality,
            "execution-time" => CostType::ExecutionTimeMicros,
            other => {
                eprintln!("unknown cost type `{other}`");
                return 2;
            }
        };
        (target, cost_type)
    };

    // Template specifications.
    let spec_texts = flags.get_all("--spec");
    let specs: Vec<TemplateSpec> = if spec_texts.is_empty() {
        workload::redset::redset_template_specs(workload::redset::DEFAULT_SEED)
    } else {
        spec_texts
            .iter()
            .enumerate()
            .map(|(i, text)| TemplateSpec::parse_declarative(i as u32 + 1, text))
            .collect()
    };

    eprintln!(
        "generating {} queries over {} intervals ({:?})…",
        target.total(),
        target.intervals.count,
        cost_type
    );
    let threads: usize = try_flag!(flags.parsed("--threads", 0));
    let use_prepared = !flags.has("--no-prepared");
    let use_columnar = !flags.has("--no-columnar");
    let mut retry = llm::RetryPolicy::default();
    if let Some(budget) = try_flag!(flags.parsed_opt("--retry-budget")) {
        retry.retry_budget = budget;
    }
    retry.breaker_enabled = !flags.has("--no-circuit-breaker");
    let rounds_concurrency: usize =
        try_flag!(flags.parsed("--bo-rounds-concurrency", 0));
    let amplify_shards: usize = try_flag!(flags.parsed("--amplify-shards", 0));
    let amplify_batch: usize = try_flag!(flags.parsed("--amplify-batch", 0));
    let mut config = SqlBarberConfig {
        seed,
        threads,
        use_prepared,
        use_columnar,
        transport: llm::TransportFaultConfig::uniform(fault_rate),
        retry,
        ..Default::default()
    };
    config.search.rounds_concurrency = rounds_concurrency;
    if amplify_n > 0 {
        config.amplify = Some(sqlbarber::AmplifyConfig {
            n: amplify_n,
            shards: amplify_shards,
            batch: amplify_batch,
            out: Some(amplify_out.clone()),
        });
    }
    config.checkpoint = checkpoint_dir.map(|dir| sqlbarber::CheckpointConfig {
        dir,
        every: checkpoint_every,
    });
    let mut barber = SqlBarber::new(&db, config);
    if let Some(kill) = kill {
        barber = barber.with_kill_switch(kill);
    }
    let outcome = match &resume_dir {
        Some(dir) => {
            eprintln!("resuming from {}…", dir.display());
            barber.resume(dir, &target, cost_type)
        }
        None => barber.generate(&specs, &target, cost_type),
    };
    let report = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("generation failed: {e}");
            return 1;
        }
    };
    println!("{}", report.summary());
    println!("{}", report.oracle_summary());
    println!("{}", report.scheduler_summary());
    println!("{}", report.resilience_summary());
    if let Some(line) = report.amplify_summary() {
        println!("{line}");
        if let Some(a) = &report.amplify {
            let secs = report.phases.amplification.as_secs_f64();
            if a.emitted > 0 && secs > 0.0 {
                println!(
                    "amplified {} queries in {:.2}s ({:.2}M queries/s) -> {}",
                    a.emitted,
                    secs,
                    a.emitted as f64 / secs / 1.0e6,
                    amplify_out.display(),
                );
            }
        }
    }
    if !report.skipped_intervals.is_empty() {
        println!("note: intervals given up on: {:?}", report.skipped_intervals);
    }

    if let Err(e) = report.write_sql(format!("{prefix}.sql")) {
        eprintln!("cannot write {prefix}.sql: {e}");
        return 1;
    }
    if let Err(e) = report.write_manifest(format!("{prefix}.json")) {
        eprintln!("cannot write {prefix}.json: {e}");
        return 1;
    }
    println!("wrote {prefix}.sql and {prefix}.json");
    0
}

fn schema(args: &[String]) -> i32 {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    print!("{}", try_flag!(load_db(&flags)).schema_summary());
    0
}

fn explain(args: &[String]) -> i32 {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let Some(sql) = flags.get("--sql") else {
        eprintln!("explain requires --sql \"SELECT …\"");
        return 2;
    };
    let db = try_flag!(load_db(&flags));
    let select = match sqlkit::parse_select(sql) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    if flags.has("--analyze") {
        match db.explain_analyze(&select) {
            Ok(analyzed) => print!("{analyzed}"),
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        }
    } else {
        match db.explain(&select) {
            Ok(explain) => print!("{explain}"),
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        }
    }
    0
}
