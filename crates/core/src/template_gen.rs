//! Customized SQL Template Generator (§4, Algorithm 1).
//!
//! The five-step workflow of Figure 3:
//!
//! 1. **Database schema summary** — from `minidb`'s catalog;
//! 2. **Join path generation** — random simple FK paths matching the
//!    spec's join count ([`crate::join_path`]);
//! 3. **Customized prompt construction** — schema (compressed to the
//!    path's tables), join path, and spec via `llm::PromptBuilder`;
//! 4. **SQL template generation** — one LLM call;
//! 5. **Template check and rewrite** — Algorithm 1: an LLM semantic
//!    check (`ValidateSemantics` / `FixSemantics`) followed by a DBMS
//!    executability check (`ValidateSyntax` / `FixExecution`), iterated
//!    up to `max_rewrite_iters` times.
//!
//! [`RewriteStats`] records, per attempt, how many templates are
//! spec-compliant and how many are executable — the exact data series of
//! the paper's Figure 8(a).
//!
//! The LLM boundary is **fallible**: every `complete` call can return an
//! [`llm::LlmError`] after the resilience layer gives up. Algorithm 1
//! degrades gracefully instead of aborting — a spec whose initial
//! generation never arrives is abandoned (the batch continues), a failed
//! validation/fix call just consumes that rewrite attempt, and a
//! response that arrives but fails protocol parsing counts as a typed
//! `Malformed` outcome. Everything lost is tallied in
//! [`DegradationStats`] so the final report shows a *partial batch*, not
//! a silent one.

use crate::join_path::{compressed_summary, sample_join_path, JoinStep};
use crate::report::DegradationStats;
use llm::protocol::{
    parse_sql_response, PromptBuilder, ValidationVerdict, TASK_FIX_EXECUTION,
    TASK_FIX_SEMANTICS, TASK_GENERATE, TASK_VALIDATE,
};
use llm::{LanguageModel, LlmError};
use minidb::Database;
use rand::rngs::StdRng;
use rand::Rng;
use sqlkit::{parse_template, Template, TemplateSpec};

/// A seed template produced by the generator.
#[derive(Debug, Clone)]
pub struct SeedTemplate {
    pub spec: TemplateSpec,
    pub template: Template,
    pub join_path: Vec<JoinStep>,
}

/// Per-attempt correctness counts across a batch (Figure 8a).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RewriteStats {
    /// `spec_correct[a]` = templates satisfying their specification after
    /// attempt `a` (attempt 0 = initial generation).
    pub spec_correct: Vec<usize>,
    /// `syntax_correct[a]` = templates executable on the DBMS after
    /// attempt `a`.
    pub syntax_correct: Vec<usize>,
    /// Batch size.
    pub total: usize,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemplateGenConfig {
    /// Algorithm 1's max iterations `k` (the paper's batch converges by
    /// the 4th attempt).
    pub max_rewrite_iters: usize,
}

impl Default for TemplateGenConfig {
    fn default() -> Self {
        TemplateGenConfig { max_rewrite_iters: 4 }
    }
}

/// Outcome of a batch generation.
#[derive(Debug, Clone)]
pub struct GeneratedTemplates {
    /// Templates that ended both spec-compliant and executable.
    pub seeds: Vec<SeedTemplate>,
    /// Figure-8a series.
    pub stats: RewriteStats,
    /// What was lost to transport failures and malformed responses.
    pub degradation: DegradationStats,
}

/// Generate templates for a batch of specifications (Steps 1–5).
pub fn generate_templates<M: LanguageModel>(
    db: &Database,
    llm: &mut M,
    specs: &[TemplateSpec],
    config: TemplateGenConfig,
    rng: &mut StdRng,
) -> GeneratedTemplates {
    let attempts = config.max_rewrite_iters + 1; // attempt 0 + k rewrites
    let mut first_spec_ok: Vec<Option<usize>> = vec![None; specs.len()];
    let mut first_syntax_ok: Vec<Option<usize>> = vec![None; specs.len()];
    let mut seeds = Vec::new();
    let mut degradation = DegradationStats::default();

    for (idx, spec) in specs.iter().enumerate() {
        let num_joins = spec.num_joins.unwrap_or_else(|| rng.gen_range(0..3));
        let join_path = sample_join_path(db, num_joins, rng).unwrap_or_default();
        let schema = compressed_summary(db, &join_path);

        // Step 4: initial generation. Without any response at all there is
        // nothing to rewrite — abandon the spec and keep the batch going.
        let generate_prompt = PromptBuilder::new(TASK_GENERATE)
            .schema(&schema)
            .join_path(&join_path)
            .spec(spec)
            .build();
        let mut sql = match llm.complete(&generate_prompt) {
            Ok(response) => match parse_sql_response(&response) {
                Some(sql) => sql,
                None => {
                    // The response arrived but broke protocol; feed a
                    // sentinel into the rewrite loop, which treats it like
                    // any other hallucinated template.
                    degradation.malformed_responses += 1;
                    "SELECT".into()
                }
            },
            Err(_) => {
                degradation.llm_failures += 1;
                degradation.abandoned_specs += 1;
                continue;
            }
        };

        // Step 5: Algorithm 1.
        let mut final_template: Option<Template> = None;
        for attempt in 0..attempts {
            // Ground-truth status for the Figure-8a series.
            let (spec_ok, syntax_ok) = status(db, spec, &sql);
            if spec_ok && first_spec_ok[idx].is_none() {
                first_spec_ok[idx] = Some(attempt);
            }
            if syntax_ok && first_syntax_ok[idx].is_none() {
                first_syntax_ok[idx] = Some(attempt);
            }
            if spec_ok && syntax_ok {
                final_template = parse_template(&sql).ok();
                break;
            }
            if attempt == attempts - 1 {
                break; // iteration budget exhausted
            }

            // Phase 1: specification compliance via the LLM judge. A
            // failed or malformed verdict consumes the attempt without a
            // semantic fix — the executability phase still runs.
            let validate_prompt = PromptBuilder::new(TASK_VALIDATE)
                .spec(spec)
                .template(&sql)
                .build();
            let verdict = match llm.complete(&validate_prompt) {
                Ok(response) => match ValidationVerdict::parse(&response) {
                    Some(verdict) => Some(verdict),
                    None => {
                        degradation.malformed_responses += 1;
                        None
                    }
                },
                Err(_) => {
                    degradation.llm_failures += 1;
                    None
                }
            };
            if let Some(verdict) = verdict {
                if !verdict.satisfied {
                    let fix_prompt = PromptBuilder::new(TASK_FIX_SEMANTICS)
                        .schema(&schema)
                        .join_path(&join_path)
                        .spec(spec)
                        .template(&sql)
                        .violations(&verdict.violations)
                        .build();
                    apply_fix(llm, &fix_prompt, &mut sql, &mut degradation);
                }
            }

            // Phase 2: executability against the DBMS.
            if let Err(error) = validate_sql_as_template(db, &sql) {
                let fix_prompt = PromptBuilder::new(TASK_FIX_EXECUTION)
                    .schema(&schema)
                    .join_path(&join_path)
                    .spec(spec)
                    .template(&sql)
                    .error(&error)
                    .build();
                apply_fix(llm, &fix_prompt, &mut sql, &mut degradation);
            }
        }

        if final_template.is_none() {
            // Loop exhausted: accept only if the last state is fully valid.
            let (spec_ok, syntax_ok) = status(db, spec, &sql);
            if spec_ok && syntax_ok {
                final_template = parse_template(&sql).ok();
            }
        }
        if let Some(template) = final_template {
            seeds.push(SeedTemplate { spec: spec.clone(), template, join_path });
        }
    }

    let cumulative = |firsts: &[Option<usize>]| -> Vec<usize> {
        (0..attempts)
            .map(|a| firsts.iter().filter(|f| f.is_some_and(|x| x <= a)).count())
            .collect()
    };
    GeneratedTemplates {
        seeds,
        stats: RewriteStats {
            spec_correct: cumulative(&first_spec_ok),
            syntax_correct: cumulative(&first_syntax_ok),
            total: specs.len(),
        },
        degradation,
    }
}

/// Run one fix call, keeping the current SQL when the transport fails or
/// the response breaks protocol (Algorithm 1 just burns the attempt).
fn apply_fix<M: LanguageModel>(
    llm: &mut M,
    fix_prompt: &str,
    sql: &mut String,
    degradation: &mut DegradationStats,
) {
    match llm.complete(fix_prompt) {
        Ok(response) => match parse_sql_response(&response) {
            Some(fixed) => *sql = fixed,
            None => degradation.malformed_responses += 1,
        },
        Err(LlmError::Malformed { .. }) => degradation.malformed_responses += 1,
        Err(_) => degradation.llm_failures += 1,
    }
}

/// Ground-truth (spec, syntax) status of a template's SQL text.
fn status(db: &Database, spec: &TemplateSpec, sql: &str) -> (bool, bool) {
    match parse_template(sql) {
        Ok(template) => {
            let spec_ok = spec.is_satisfied_by(&template.features());
            let syntax_ok = db.validate_template(&template).is_ok();
            (spec_ok, syntax_ok)
        }
        Err(_) => (false, false),
    }
}

/// DBMS executability check (Algorithm 1's `ValidateSyntax`), as the
/// error-string channel fed back to the LLM.
fn validate_sql_as_template(db: &Database, sql: &str) -> Result<(), String> {
    let template = parse_template(sql).map_err(|e| e.to_string())?;
    db.validate_template(&template).map_err(|e| e.to_string())
}

/// Template Alignment Accuracy: the fraction of produced templates whose
/// features satisfy their specification (the paper's third metric, which
/// only SQLBarber supports).
pub fn template_alignment_accuracy(seeds: &[SeedTemplate]) -> f64 {
    if seeds.is_empty() {
        return 0.0;
    }
    let aligned = seeds
        .iter()
        .filter(|s| s.spec.is_satisfied_by(&s.template.features()))
        .count();
    aligned as f64 / seeds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::{FaultConfig, SyntheticLlm};
    use rand::SeedableRng;
    use workload::redset::redset_template_specs;

    fn tpch() -> Database {
        minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
    }

    #[test]
    fn reliable_llm_generates_every_template_first_try() {
        let db = tpch();
        let mut llm = SyntheticLlm::reliable(7);
        let specs = redset_template_specs(7);
        let mut rng = StdRng::seed_from_u64(7);
        let out =
            generate_templates(&db, &mut llm, &specs[..6], TemplateGenConfig::default(), &mut rng);
        assert_eq!(out.seeds.len(), 6);
        assert_eq!(out.stats.spec_correct[0], 6);
        assert_eq!(out.stats.syntax_correct[0], 6);
        assert_eq!(template_alignment_accuracy(&out.seeds), 1.0);
        assert!(out.degradation.is_quiet());
    }

    #[test]
    fn transport_faults_degrade_the_batch_without_aborting() {
        let db = tpch();
        let inner = SyntheticLlm::reliable(7);
        let mut llm = llm::FaultyTransport::new(
            inner,
            llm::TransportFaultConfig::uniform(0.5),
            41,
        );
        let specs = redset_template_specs(7);
        let mut rng = StdRng::seed_from_u64(7);
        let out =
            generate_templates(&db, &mut llm, &specs, TemplateGenConfig::default(), &mut rng);
        // No retry layer here, so half the calls fail outright: specs are
        // abandoned and fix attempts burned, but the batch still finishes
        // and every surviving seed is fully valid.
        assert!(!out.degradation.is_quiet(), "expected degradation at 50% faults");
        assert!(out.degradation.llm_failures > 0);
        assert!(
            out.seeds.len() + out.degradation.abandoned_specs as usize <= specs.len(),
            "seeds {} + abandoned {} > batch {}",
            out.seeds.len(),
            out.degradation.abandoned_specs,
            specs.len()
        );
        assert_eq!(template_alignment_accuracy(&out.seeds), 1.0);
        assert_eq!(out.stats.total, specs.len());
    }

    #[test]
    fn faulty_llm_converges_like_figure_8a() {
        let db = tpch();
        let mut llm = SyntheticLlm::new(FaultConfig::default(), 13);
        let specs = redset_template_specs(13);
        let mut rng = StdRng::seed_from_u64(13);
        let out =
            generate_templates(&db, &mut llm, &specs, TemplateGenConfig::default(), &mut rng);
        let stats = &out.stats;
        assert_eq!(stats.total, 24);
        // Initial generation: few compliant, some executable.
        assert!(stats.spec_correct[0] <= 8, "spec at 0: {}", stats.spec_correct[0]);
        assert!(
            (2..=16).contains(&stats.syntax_correct[0]),
            "syntax at 0: {}",
            stats.syntax_correct[0]
        );
        // Monotone convergence toward the full batch.
        assert!(stats.spec_correct.windows(2).all(|w| w[0] <= w[1]));
        assert!(stats.syntax_correct.windows(2).all(|w| w[0] <= w[1]));
        let last = stats.spec_correct.len() - 1;
        assert!(stats.spec_correct[last] >= 22, "final spec {}", stats.spec_correct[last]);
        assert!(
            stats.syntax_correct[last] >= 22,
            "final syntax {}",
            stats.syntax_correct[last]
        );
        // Seeds are exactly the fully-valid templates.
        assert!(out.seeds.len() >= 22);
        assert_eq!(template_alignment_accuracy(&out.seeds), 1.0);
    }

    #[test]
    fn seeds_have_matching_join_paths() {
        let db = tpch();
        let mut llm = SyntheticLlm::reliable(3);
        let specs = redset_template_specs(3);
        let mut rng = StdRng::seed_from_u64(3);
        let out =
            generate_templates(&db, &mut llm, &specs[..8], TemplateGenConfig::default(), &mut rng);
        for seed in &out.seeds {
            assert_eq!(
                seed.join_path.len() as u32,
                seed.spec.num_joins.unwrap_or(seed.join_path.len() as u32)
            );
        }
    }
}
