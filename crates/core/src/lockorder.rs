//! Runtime lock-order tracking: the dynamic half of deadlock freedom.
//!
//! Every mutex in this workspace belongs to a named **lock class**, and
//! the classes form one canonical acquisition order, declared below for
//! detlint's R6 `lock_order` pass and encoded as [`LockRank`] constants
//! for this module. A thread may only acquire a lock whose rank is
//! strictly greater than every lock it already holds — so any execution
//! that completes under the tracker is a witness that the static
//! acquisition graph detlint builds is acyclic along that path, and any
//! divergence between the declared order and real behavior panics the
//! test suite instead of deadlocking it.
//!
// detlint::lock_order(payloads < templates < interner < text_shards < prepared_shards < lanes)
//!
//! The order reads outermost-to-innermost. A scheduler task holds its
//! `payloads` lock for the task's whole run — every oracle acquisition
//! the task makes (template registry, interner, memo shards) nests
//! inside it, so `payloads` is the outermost class (the first tracker
//! run caught exactly this: the draft order had it innermost and the BO
//! suite panicked immediately). The template registry is held across
//! plan construction, the interner feeds key construction, the two memo
//! shard families are taken one-at-a-time per batch phase, and the
//! amplification lanes are true leaves (`Lane::run` costs against the
//! prepared plan directly and never touches an oracle lock).
//!
//! [`OrderedMutex`] wraps `parking_lot::Mutex` and is free in release
//! builds (no tracking state, `lock()` forwards directly). In debug
//! builds every acquisition checks a thread-local stack of held ranks;
//! the whole test suite — chaos, crash-resume, thread matrices —
//! doubles as a validation harness for the declared order.

use parking_lot::{Mutex, MutexGuard};

/// A lock class: its rank in the canonical acquisition order and its
/// name (as used in the `detlint::lock_order` declaration above).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockRank {
    rank: u16,
    name: &'static str,
}

impl LockRank {
    const fn new(rank: u16, name: &'static str) -> LockRank {
        LockRank { rank, name }
    }

    /// Class name (matches the static declaration).
    pub fn name(self) -> &'static str {
        self.name
    }

    /// Position in the canonical order (larger = innermost).
    pub fn rank(self) -> u16 {
        self.rank
    }
}

/// Scheduler task payloads (outermost: held across a task's entire BO
/// run, including every oracle probe the task makes).
pub const PAYLOADS: LockRank = LockRank::new(10, "payloads");
/// Oracle prepared-template registry (held across plan construction).
pub const TEMPLATES: LockRank = LockRank::new(20, "templates");
/// Oracle string interner (feeds binding-key construction).
pub const INTERNER: LockRank = LockRank::new(30, "interner");
/// Text-keyed memo shards (one at a time per batch phase).
pub const TEXT_SHARDS: LockRank = LockRank::new(40, "text_shards");
/// Prepared-keyed memo shards (one at a time per batch phase).
pub const PREPARED_SHARDS: LockRank = LockRank::new(50, "prepared_shards");
/// Amplification lane scratch (leaf; one worker per lane per wave,
/// costing straight against the prepared plan — no oracle locks).
pub const LANES: LockRank = LockRank::new(60, "lanes");

/// The canonical order, for diagnostics (read by the debug tracker;
/// release builds compile the tracker out).
#[cfg_attr(not(debug_assertions), allow(dead_code))]
const DECLARED: &str =
    "payloads < templates < interner < text_shards < prepared_shards < lanes";

#[cfg(debug_assertions)]
mod tracker {
    use super::DECLARED;
    use std::cell::{Cell, RefCell};

    thread_local! {
        /// Locks currently held by this thread: `(rank, name, token)`.
        /// Guards can drop in any order, so entries are removed by token,
        /// not popped.
        static HELD: RefCell<Vec<(u16, &'static str, u64)>> =
            const { RefCell::new(Vec::new()) };
        static NEXT_TOKEN: Cell<u64> = const { Cell::new(0) };
    }

    /// Record an acquisition; panics if any held lock's rank is not
    /// strictly below `rank` (equal ranks count as violations too —
    /// same-class nesting, e.g. two memo shards at once, is how
    /// symmetric deadlocks start).
    pub fn acquire(rank: u16, name: &'static str) -> u64 {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            for &(held_rank, held_name, _) in held.iter() {
                assert!(
                    held_rank < rank,
                    "lock-order violation: acquiring `{name}` (rank {rank}) while \
                     holding `{held_name}` (rank {held_rank}); declared order: {DECLARED}",
                );
            }
            let token = NEXT_TOKEN.with(|next| {
                let t = next.get();
                next.set(t + 1);
                t
            });
            held.push((rank, name, token));
            token
        })
    }

    /// Forget the acquisition identified by `token`.
    pub fn release(token: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&(_, _, t)| t == token) {
                held.remove(pos);
            }
        });
    }
}

/// A [`parking_lot::Mutex`] bound to a [`LockRank`]. Release builds add
/// nothing over the raw mutex; debug builds assert the canonical
/// acquisition order on every `lock()`.
#[derive(Debug)]
pub struct OrderedMutex<T> {
    rank: LockRank,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    pub const fn new(rank: LockRank, value: T) -> OrderedMutex<T> {
        OrderedMutex { rank, inner: Mutex::new(value) }
    }

    /// Acquire the lock. In debug builds, panics if this thread already
    /// holds a lock of equal or greater rank.
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = tracker::acquire(self.rank.rank, self.rank.name);
        OrderedGuard {
            guard: self.inner.lock(),
            #[cfg(debug_assertions)]
            token,
        }
    }

    /// This mutex's lock class.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

/// RAII guard for [`OrderedMutex`]; unregisters the acquisition on drop.
pub struct OrderedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    token: u64,
}

impl<T> std::ops::Deref for OrderedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        tracker::release(self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_nesting_is_allowed() {
        let outer = OrderedMutex::new(TEMPLATES, 1u32);
        let inner = OrderedMutex::new(INTERNER, 2u32);
        let a = outer.lock();
        let b = inner.lock();
        assert_eq!(*a + *b, 3);
    }

    #[test]
    fn sequential_reacquisition_is_allowed() {
        let m = OrderedMutex::new(TEXT_SHARDS, 0u32);
        *m.lock() += 1;
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn guards_may_drop_out_of_order() {
        let a = OrderedMutex::new(TEMPLATES, ());
        let b = OrderedMutex::new(INTERNER, ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // outer released first: legal, tracker must not corrupt
        drop(gb);
        // Both free again.
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[test]
    fn other_threads_are_independent(){
        let outer = OrderedMutex::new(PREPARED_SHARDS, ());
        let _held = outer.lock();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // This thread holds nothing: acquiring a lower rank is fine.
                let inner = OrderedMutex::new(TEMPLATES, ());
                // detlint::allow(lock_order): acquired on a freshly spawned thread that holds nothing; order is per-thread and the static pass cannot see thread boundaries
                let _g = inner.lock();
            });
        });
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn out_of_order_nesting_trips_the_tracker() {
        let outer = OrderedMutex::new(PREPARED_SHARDS, ());
        let inner = OrderedMutex::new(TEMPLATES, ());
        let _held = outer.lock();
        // detlint::allow(lock_order): deliberate reversal; the should_panic expectation proves the runtime tracker rejects it
        let _violation = inner.lock(); // templates after prepared_shards
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn same_rank_nesting_trips_the_tracker() {
        let a = OrderedMutex::new(TEXT_SHARDS, ());
        let b = OrderedMutex::new(TEXT_SHARDS, ());
        let _held = a.lock();
        // detlint::allow(lock_order): deliberate same-class nesting; the should_panic expectation proves the runtime tracker rejects it
        let _violation = b.lock(); // two shards of one family at once
    }
}
