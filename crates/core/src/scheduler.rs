//! Deficit-driven interval scheduler for Algorithm 3 (§5.3).
//!
//! The paper's BO predicate search picks the single largest-deficit
//! interval and runs one `(interval, template)` optimization at a time.
//! That serial outer loop leaves most of the `--threads N` worker pool
//! idle during the explore phase, whose mini-batches are deliberately
//! tiny ([`BATCH_EXPLORE`]). The per-interval searches are nearly
//! independent, so this module runs them concurrently — without giving up
//! the workspace's bit-identical-at-any-thread-count discipline:
//!
//! * **Rounds.** Each round selects the top-K deficit intervals. K scales
//!   with the *deficit profile* (how many intervals still need a
//!   comparable amount of work), never with the thread count, so the
//!   schedule — and therefore the output — is a pure function of the
//!   search state. `--bo-rounds-concurrency` pins K instead.
//! * **Disjoint claims.** Selection runs serially in deficit order; each
//!   interval weight-samples its candidate templates (Eq. 2) from the
//!   templates no earlier interval claimed this round. Tasks therefore
//!   own their templates' mutable profiling state outright. An interval
//!   whose candidates are all claimed is *deferred* (no failure charged);
//!   an interval with no candidates at all is skipped, as in the serial
//!   loop.
//! * **Task-local acceptance.** A task searches against a [`LocalView`]: a
//!   clone of the interval deficits `d` and a frozen snapshot of the
//!   accepted-SQL set. It never touches shared state.
//! * **Round barrier.** After all tasks join, their locally accepted
//!   queries are re-admitted against the real state in canonical
//!   `(interval index, template index)` order. Over-admission — two tasks
//!   filling the same neighbor interval, or proposing the same SQL — is
//!   resolved by that order, not by arrival order. Utility ratios
//!   (Eq. 6), failure counters, and skip decisions are computed from the
//!   post-merge counts, also at the barrier.
//! * **Seed splits.** Every random draw comes from an RNG seeded by
//!   `split_seed` chains keyed on `(round, interval, template)`, so no
//!   task's stream depends on which worker runs it or when.
//!
//! The thread budget is split between the round's tasks and each task's
//! inner oracle batches: with T threads and K tasks, each task costs its
//! mini-batches on `max(1, T/K)` workers
//! ([`CostOracle::cost_prepared_batch_on`]).

use crate::bo_search::{
    interval_objective, weighted_sample, BoSearchConfig, GeneratedQuery, SearchResult,
    SearchState, BATCH_EXPLORE, BATCH_HARVEST,
};
use crate::cost::CostType;
use crate::oracle::{ColumnarScratch, CostOracle};
use crate::profiler::ProfiledTemplate;
use bayesopt::parallel::{parallel_map, split_seed};
use bayesopt::{BoConfig, Evaluation, Optimizer};
use crate::lockorder::{self, OrderedMutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlkit::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use workload::TargetDistribution;

/// Ceiling on the auto-selected task count per round.
const MAX_AUTO_TASKS: usize = 8;
/// Auto mode admits an interval into a round when its deficit is at least
/// this fraction of the round's largest deficit.
const AUTO_DEFICIT_FRACTION: f64 = 0.5;

/// One (interval, claimed templates) work item within a round.
struct RoundTask {
    interval: usize,
    lo: f64,
    hi: f64,
    /// Deficit at selection time; sizes the per-run BO budget.
    delta: f64,
    /// Claimed template indices, in weighted-sample order.
    templates: Vec<usize>,
    /// Seed for this task's per-run RNGs (split per template index).
    seed: u64,
}

/// A query accepted against a task's local view; ratified or rejected at
/// the round barrier.
struct LocalAccept {
    sql: String,
    cost: f64,
}

/// Outcome of one `(interval, template)` BO run inside a task.
struct RunOutcome {
    template_idx: usize,
    generated: usize,
    accepts: Vec<LocalAccept>,
}

/// Everything one task hands to the merge step.
struct TaskOutcome {
    interval: usize,
    runs: Vec<RunOutcome>,
}

/// Task-local view of the shared acceptance state: deficits cloned at the
/// round start plus a frozen reference to the globally accepted SQL set.
/// Accepting locally never mutates shared state; the merge re-runs every
/// acceptance against the real [`SearchState`].
struct LocalView<'a> {
    d: Vec<f64>,
    global_seen: &'a HashSet<String>,
    new_seen: HashSet<String>,
}

impl LocalView<'_> {
    /// Cost-only prefix of [`LocalView::try_accept`], so the hot path can
    /// defer rendering SQL until a cost qualifies.
    fn would_consider(&self, cost: f64, target: &TargetDistribution) -> bool {
        match target.intervals.interval_of(cost) {
            Some(j) => self.d[j] < target.counts[j],
            None => false,
        }
    }

    fn try_accept(&mut self, sql: &str, cost: f64, target: &TargetDistribution) -> bool {
        let Some(j) = target.intervals.interval_of(cost) else { return false };
        if self.d[j] >= target.counts[j] {
            return false;
        }
        if self.global_seen.contains(sql) || self.new_seen.contains(sql) {
            return false;
        }
        self.new_seen.insert(sql.to_string());
        self.d[j] += 1.0;
        true
    }
}

/// How many intervals a round works on. Auto mode (`configured == 0`)
/// counts the intervals whose deficit is within [`AUTO_DEFICIT_FRACTION`]
/// of the largest — "how many intervals need a comparable amount of work
/// right now" — clamped to [1, [`MAX_AUTO_TASKS`]]. The width is a pure
/// function of the deficit profile; the thread count never enters.
fn round_width(eligible: &[(usize, f64)], configured: usize) -> usize {
    if configured > 0 {
        return configured.min(eligible.len()).max(1);
    }
    let max_deficit = eligible.first().map(|&(_, d)| d).unwrap_or(0.0);
    eligible
        .iter()
        .filter(|&&(_, d)| d >= AUTO_DEFICIT_FRACTION * max_deficit)
        .count()
        .clamp(1, MAX_AUTO_TASKS)
}

/// Scheduler bookkeeping restored from a mid-search checkpoint. The
/// accepted-query state ([`SearchState`]) travels separately; this carries
/// only what lives in [`deficit_schedule`]'s locals between rounds.
pub(crate) struct SchedResume {
    /// First round the resumed search runs (RNG chains are keyed by round
    /// number, so this alone realigns every seed split).
    pub next_round: u64,
    /// Bad `(interval, template)` combinations (Eq. 6).
    pub bad: BTreeSet<(usize, usize)>,
    /// Skipped intervals.
    pub skip: BTreeSet<usize>,
    /// Consecutive fruitless rounds per interval.
    pub failures: BTreeMap<usize, u32>,
    /// Oracle evaluations spent by the search so far.
    pub evaluations: usize,
}

/// Everything a round-boundary observer needs to persist a resumable
/// checkpoint. Borrows the scheduler's live bookkeeping; valid only for
/// the duration of the callback.
pub(crate) struct RoundSnapshot<'a> {
    /// The search's master seed.
    pub search_seed: u64,
    /// The round the search will run next.
    pub next_round: u64,
    /// Bad `(interval, template)` combinations so far.
    pub bad: &'a BTreeSet<(usize, usize)>,
    /// Skipped intervals so far.
    pub skip: &'a BTreeSet<usize>,
    /// Per-interval failure counters.
    pub failures: &'a BTreeMap<usize, u32>,
    /// Evaluations spent so far.
    pub evaluations: usize,
    /// Per-interval accepted counts.
    pub d: &'a [f64],
    /// Accepted queries so far, in acceptance order.
    pub queries: &'a [GeneratedQuery],
}

/// Observer verdict at a round boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RoundControl {
    /// Keep searching.
    Continue,
    /// Stop after this round (kill-switch unwind); the caller decides
    /// what the early return means.
    Stop,
}

/// Run the scheduled BO search until every interval is filled or skipped.
/// Replaces the paper's serial outer loop; at any thread count the rounds,
/// tasks, and merges are identical, so concurrency is a pure perf knob.
///
/// `search_seed` is the master seed every per-round RNG chain derives
/// from (the caller draws it; see `bo_predicate_search` for the legacy
/// stream position). `resume` restarts the outer loop mid-search from a
/// checkpoint: RNG chains are keyed by `(search_seed, round)`, so
/// restoring the round counter and bookkeeping reproduces the exact
/// remaining schedule. `on_round` observes every round boundary — after
/// the merge, when no task borrows are alive — and may stop the search.
#[allow(clippy::too_many_arguments)]
pub(crate) fn deficit_schedule(
    oracle: &CostOracle,
    templates: &mut [ProfiledTemplate],
    target: &TargetDistribution,
    cost_type: CostType,
    config: &BoSearchConfig,
    search_seed: u64,
    resume: Option<SchedResume>,
    mut state: SearchState,
    mut on_progress: impl FnMut(&[f64]),
    mut on_round: impl FnMut(&RoundSnapshot, &[ProfiledTemplate]) -> RoundControl,
) -> SearchResult {
    let n_templates = templates.len();
    let trace = std::env::var("SQLBARBER_TRACE").is_ok();

    let mut bad: BTreeSet<(usize, usize)> = BTreeSet::new(); // (interval, template)
    let mut skip: BTreeSet<usize> = BTreeSet::new();
    let mut failures: BTreeMap<usize, u32> = BTreeMap::new();
    let mut evaluations = 0usize;
    let mut start_round = 0u64;
    if let Some(resume) = resume {
        bad = resume.bad;
        skip = resume.skip;
        failures = resume.failures;
        evaluations = resume.evaluations;
        start_round = resume.next_round;
    }

    for round in start_round.. {
        let round_seed = split_seed(search_seed, round);

        // Intervals still owed queries, by descending deficit
        // (index-ascending on ties).
        let mut eligible: Vec<(usize, f64)> = (0..target.intervals.count)
            .filter(|j| !skip.contains(j))
            .map(|j| (j, target.counts[j] - state.d[j]))
            .filter(|(_, delta)| *delta > 0.0)
            .collect();
        if eligible.is_empty() {
            break;
        }
        eligible.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let width = round_width(&eligible, config.rounds_concurrency);

        // Serial selection in deficit order: rank, filter, and
        // weight-sample candidate templates per interval, claiming each
        // template for at most one task this round.
        let mut claimed_templates: HashSet<usize> = HashSet::new();
        let mut tasks: Vec<RoundTask> = Vec::new();
        for &(j, delta) in eligible.iter().take(width) {
            let (lo, hi) = target.intervals.bounds(j);
            let mut candidates: Vec<(usize, f64)> = (0..n_templates)
                .filter(|&idx| !bad.contains(&(j, idx)))
                .filter(|&idx| {
                    templates[idx].remaining_space() >= config.space_factor * delta
                })
                .filter(|&idx| {
                    templates[idx].variety() >= config.min_variety
                        || templates[idx].costs.len() < 10
                })
                .map(|idx| (idx, templates[idx].closeness(lo, hi)))
                .filter(|(_, score)| *score > 0.0)
                .collect();
            if candidates.is_empty() {
                // Nothing can serve this interval, now or later — same
                // rule as the serial loop.
                if trace {
                    eprintln!("[sched] interval {j} (Δ={delta:.0}): no candidates → skip");
                }
                skip.insert(j);
                continue;
            }
            candidates.retain(|(idx, _)| !claimed_templates.contains(idx));
            if candidates.is_empty() {
                // Its templates are busy in this round; try again next
                // round without charging a failure.
                continue;
            }
            let mut sel_rng = StdRng::seed_from_u64(split_seed(round_seed, 2 * j as u64));
            let selected =
                weighted_sample(&mut candidates, config.weighted_sample, &mut sel_rng);
            claimed_templates.extend(selected.iter().copied());
            tasks.push(RoundTask {
                interval: j,
                lo,
                hi,
                delta,
                templates: selected,
                seed: split_seed(round_seed, 2 * j as u64 + 1),
            });
        }
        if tasks.is_empty() {
            // Every selected interval was skipped outright; the skip set
            // grew, so the loop still terminates.
            continue;
        }
        // Canonical order: selection ran in deficit order, but launch and
        // merge run in ascending interval index.
        tasks.sort_by_key(|task| task.interval);

        // Thread budget: task slots × inner costing workers ≤ threads.
        let threads = oracle.threads();
        let slots = tasks.len().min(threads).max(1);
        let inner_threads = (threads / slots).max(1);
        if trace {
            let intervals: Vec<usize> = tasks.iter().map(|t| t.interval).collect();
            eprintln!(
                "[sched] round {round}: intervals {intervals:?}, {slots} slots × {inner_threads} inner threads"
            );
        }

        // Hand each task its claimed templates. The claims are disjoint,
        // so every `&mut ProfiledTemplate` moves to exactly one task; the
        // Mutex is only there to let the shared-reference worker closure
        // reach its task's payload (each lock is taken exactly once).
        let mut loans: Vec<Option<&mut ProfiledTemplate>> =
            templates.iter_mut().map(Some).collect();
        let payloads: Vec<OrderedMutex<Vec<(usize, &mut ProfiledTemplate)>>> = tasks
            .iter()
            .map(|task| {
                OrderedMutex::new(
                    lockorder::PAYLOADS,
                    task.templates
                        .iter()
                        .map(|&idx| (idx, loans[idx].take().expect("template claimed once")))
                        .collect(),
                )
            })
            .collect();

        let round_d = state.d.clone();
        let frozen_seen = &state.seen;
        let outcomes: Vec<TaskOutcome> = parallel_map(slots, &tasks, |i, task| {
            let mut payload = payloads[i].lock();
            run_task(
                oracle,
                task,
                &mut payload,
                &round_d,
                frozen_seen,
                target,
                cost_type,
                config,
                inner_threads,
            )
        });

        // Round barrier: ratify local accepts against the real state in
        // canonical (interval, template, generation) order, then settle
        // Eq. 6 badness and failure/skip bookkeeping from the post-merge
        // counts.
        let mut overadmissions = 0u64;
        let n_tasks = outcomes.len() as u64;
        for outcome in outcomes {
            let j = outcome.interval;
            let before = state.d[j];
            for run in outcome.runs {
                evaluations += run.generated;
                let mut accepted = 0usize;
                let mut accepted_target = 0usize;
                for admit in run.accepts {
                    if state.try_accept(admit.sql, admit.cost, target) {
                        accepted += 1;
                        if target.intervals.interval_of(admit.cost) == Some(j) {
                            accepted_target += 1;
                        }
                    } else {
                        overadmissions += 1;
                    }
                }
                // Utility ratio (Eq. 6): a combination is bad when it
                // predominantly wastes evaluations — low ratio AND no
                // progress on the targeted interval itself.
                if run.generated > 0 {
                    let utility = accepted as f64 / run.generated as f64;
                    if utility < config.utility_cutoff && accepted_target == 0 {
                        bad.insert((j, run.template_idx));
                    }
                }
                on_progress(&state.d);
            }
            if state.d[j] <= before {
                let count = failures.entry(j).or_insert(0);
                *count += 1;
                if *count >= config.failure_cap {
                    skip.insert(j);
                }
            }
        }
        oracle.note_scheduler_round(n_tasks, overadmissions);
        if trace {
            eprintln!(
                "[sched] round {round}: merged, {overadmissions} overadmissions, d = {:?}",
                state.d
            );
        }

        // Release the template loans so the observer can read the whole
        // (now merge-consistent) template slice.
        drop(payloads);
        drop(loans);
        let verdict = on_round(
            &RoundSnapshot {
                search_seed,
                next_round: round + 1,
                bad: &bad,
                skip: &skip,
                failures: &failures,
                evaluations,
                d: &state.d,
                queries: &state.queries,
            },
            templates,
        );
        if verdict == RoundControl::Stop {
            break;
        }
    }

    SearchResult {
        queries: state.queries,
        distribution: state.d,
        skipped: skip.into_iter().collect(),
        evaluations,
    }
}

/// Execute one task: run the claimed templates in order against a local
/// view, stopping early once the local view says the target interval is
/// full (exactly like the serial loop's per-interval template sweep).
#[allow(clippy::too_many_arguments)]
fn run_task(
    oracle: &CostOracle,
    task: &RoundTask,
    claimed: &mut [(usize, &mut ProfiledTemplate)],
    round_d: &[f64],
    frozen_seen: &HashSet<String>,
    target: &TargetDistribution,
    cost_type: CostType,
    config: &BoSearchConfig,
    inner_threads: usize,
) -> TaskOutcome {
    let mut view = LocalView {
        d: round_d.to_vec(),
        global_seen: frozen_seen,
        new_seen: HashSet::new(),
    };
    let budget = ((config.budget_factor * task.delta).ceil() as usize)
        .clamp(config.min_run_budget.min(config.max_run_budget), config.max_run_budget);
    let mut runs = Vec::with_capacity(claimed.len());
    for (template_idx, template) in claimed.iter_mut() {
        let mut run_rng =
            StdRng::seed_from_u64(split_seed(task.seed, *template_idx as u64));
        let (generated, accepts) = execute_run(
            oracle,
            template,
            task.interval,
            task.lo,
            task.hi,
            budget,
            target,
            cost_type,
            config,
            inner_threads,
            &mut run_rng,
            &mut view,
        );
        runs.push(RunOutcome { template_idx: *template_idx, generated, accepts });
        if target.counts[task.interval] - view.d[task.interval] <= 0.0 {
            break; // locally full; the merge has the final say
        }
    }
    TaskOutcome { interval: task.interval, runs }
}

/// One `BayesianOptimize(T, I_j*, n)` run against a task-local view.
/// Returns `(generated, locally accepted queries in generation order)`.
///
/// Probes are costed in fixed-size mini-batches through the oracle's
/// worker pool: each batch is drawn serially (RNG and surrogate state
/// never touch the parallel section), costed on `inner_threads` workers,
/// and processed in submission order. Probes travel as binding vectors
/// over the template's prepared plan; SQL is rendered only for costs that
/// clear the interval and deficit checks.
#[allow(clippy::too_many_arguments)]
fn execute_run(
    oracle: &CostOracle,
    template: &mut ProfiledTemplate,
    j_star: usize,
    lo: f64,
    hi: f64,
    budget: usize,
    target: &TargetDistribution,
    cost_type: CostType,
    config: &BoSearchConfig,
    inner_threads: usize,
    rng: &mut StdRng,
    view: &mut LocalView,
) -> (usize, Vec<LocalAccept>) {
    let mut generated = 0;
    let mut accepts: Vec<LocalAccept> = Vec::new();

    // Candidates reach this run only with closeness > 0, which requires
    // successfully profiled (hence plannable) templates; the bail-out is
    // pure defense.
    let Ok(prepared) = oracle.prepare(&template.template) else {
        return (0, accepts);
    };

    let mut optimizer = Optimizer::new(
        template.space.space.clone(),
        BoConfig { seed: rng.gen(), threads: inner_threads, ..config.bo },
    );
    // Warm start: re-score historical evaluations under the current
    // interval objective (the paper's run-history reuse).
    optimizer.warm_start(template.evaluations.iter().map(|e| Evaluation {
        point: e.point.clone(),
        value: interval_objective(e.value, lo, hi),
    }));

    // Points already known to land inside the interval. Once the search
    // has *found* the conforming region, pure EI degenerates (the
    // objective is flat at 0 there, and re-proposing the incumbent yields
    // duplicate SQL); §5.3 prescribes "balancing the exploitation of
    // predicate values already known to satisfy the cost targets with the
    // exploration of unknown predicate values" — exploitation here means
    // harvesting distinct neighbours of the known-good points.
    let mut conforming: Vec<Vec<f64>> = Vec::new();

    // Arena for the columnar batch path, reused across every mini-batch of
    // this run: warm batches cost probes without allocating.
    let mut scratch = ColumnarScratch::new();

    let mut spent = 0;
    'runs: while spent < budget {
        // Batch size depends only on search state, never on thread count.
        let batch_size = if conforming.is_empty() { BATCH_EXPLORE } else { BATCH_HARVEST }
            .min(budget - spent);
        let mut points: Vec<Vec<f64>> = Vec::with_capacity(batch_size);
        let mut bindings_list: Vec<HashMap<u32, Value>> = Vec::with_capacity(batch_size);
        for _ in 0..batch_size {
            spent += 1;
            let point = if conforming.is_empty() || template.space.arity() == 0 {
                optimizer.ask()
            } else if rng.gen_bool(0.75) {
                let base = &conforming[rng.gen_range(0..conforming.len())];
                template.space.space.perturb(base, 0.12, rng)
            } else {
                template.space.space.sample_unit(rng)
            };
            bindings_list.push(template.space.decode(&point));
            points.push(point);
        }

        let costs = oracle.cost_prepared_batch_columnar_on(
            inner_threads,
            &prepared,
            &bindings_list,
            cost_type,
            &mut scratch,
        );
        for ((point, bindings), cost) in points.into_iter().zip(bindings_list).zip(costs) {
            let &Ok(cost) = cost else { continue };
            generated += 1;
            template.consumed += 1.0;
            template.costs.push(cost);
            template.evaluations.push(Evaluation { point: point.clone(), value: cost });
            let objective = interval_objective(cost, lo, hi);
            if conforming.is_empty() {
                optimizer.tell(point.clone(), objective);
            }
            if objective == 0.0 && conforming.len() < 64 {
                conforming.push(point);
            }
            // Render SQL only once the cost clears the interval/deficit
            // checks — the seen-set still needs the text, but rejected
            // probes (the vast majority) never materialize a string.
            if view.would_consider(cost, target) {
                if let Ok(query) = template.template.instantiate(&bindings) {
                    let sql = query.to_string();
                    if view.try_accept(&sql, cost, target) {
                        accepts.push(LocalAccept { sql, cost });
                    }
                }
            }
            if target.counts[j_star] - view.d[j_star] <= 0.0 {
                break 'runs; // the targeted interval is locally full
            }
        }
    }
    (generated, accepts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::CostIntervals;

    #[test]
    fn round_width_scales_with_the_deficit_profile_not_threads() {
        // One dominant deficit → width 1 regardless of anything else.
        assert_eq!(round_width(&[(0, 100.0), (1, 10.0), (2, 5.0)], 0), 1);
        // Three comparable deficits → width 3.
        assert_eq!(round_width(&[(4, 100.0), (1, 80.0), (2, 51.0), (3, 10.0)], 0), 3);
        // Many comparable deficits → clamped to the auto ceiling.
        let flat: Vec<(usize, f64)> = (0..20).map(|j| (j, 50.0)).collect();
        assert_eq!(round_width(&flat, 0), MAX_AUTO_TASKS);
        // Explicit concurrency pins the width (capped by eligibility).
        assert_eq!(round_width(&flat, 3), 3);
        assert_eq!(round_width(&[(0, 9.0)], 5), 1);
    }

    /// Over-admission: two tasks of one round both locally accept into the
    /// same one-slot interval. The merge must ratify the canonically first
    /// accept (lower interval index) and reject the other, identically on
    /// every merge.
    #[test]
    fn merge_resolves_overadmission_by_canonical_order() {
        let target = TargetDistribution::uniform(CostIntervals::new(0.0, 300.0, 3), 3);
        // target.counts = [1, 1, 1]; both tasks below accept a query whose
        // cost lands in interval 1 (the shared neighbor).
        let merge = || {
            let mut state = SearchState {
                d: vec![0.0; 3],
                queries: Vec::new(),
                seen: HashSet::new(),
            };
            let outcomes = vec![
                TaskOutcome {
                    interval: 0,
                    runs: vec![RunOutcome {
                        template_idx: 7,
                        generated: 2,
                        accepts: vec![
                            LocalAccept { sql: "SELECT a".into(), cost: 50.0 },
                            LocalAccept { sql: "SELECT b".into(), cost: 150.0 },
                        ],
                    }],
                },
                TaskOutcome {
                    interval: 2,
                    runs: vec![RunOutcome {
                        template_idx: 3,
                        generated: 2,
                        accepts: vec![
                            // Same neighbor interval as task 0's second
                            // accept — only one slot exists.
                            LocalAccept { sql: "SELECT c".into(), cost: 160.0 },
                            // Same SQL as task 0's first accept.
                            LocalAccept { sql: "SELECT a".into(), cost: 250.0 },
                        ],
                    }],
                },
            ];
            let mut overadmissions = 0u64;
            for outcome in outcomes {
                for run in outcome.runs {
                    for admit in run.accepts {
                        if !state.try_accept(admit.sql, admit.cost, &target) {
                            overadmissions += 1;
                        }
                    }
                }
            }
            let mut sqls: Vec<String> =
                state.queries.iter().map(|q| q.sql.clone()).collect();
            sqls.sort();
            (state.d, sqls, overadmissions)
        };
        let (d, sqls, over) = merge();
        // Task 0's accepts win both conflicts: interval 1 holds "SELECT b",
        // and the duplicate "SELECT a" from task 2 is rejected.
        assert_eq!(d, vec![1.0, 1.0, 0.0]);
        assert_eq!(sqls, vec!["SELECT a".to_string(), "SELECT b".to_string()]);
        assert_eq!(over, 2);
        // Deterministic: re-merging the same outcomes yields the same
        // resolution.
        assert_eq!(merge(), merge());
    }

    /// The local view freezes the global seen-set and deficits: accepts
    /// respect both, and duplicates within the task are caught too.
    #[test]
    fn local_view_enforces_frozen_state_and_local_dedupe() {
        // counts = [4, 4]
        let target = TargetDistribution::uniform(CostIntervals::new(0.0, 200.0, 2), 8);
        let mut global_seen = HashSet::new();
        global_seen.insert("SELECT old".to_string());
        let mut view = LocalView {
            d: vec![1.0, 2.0],
            global_seen: &global_seen,
            new_seen: HashSet::new(),
        };
        assert!(!view.try_accept("SELECT old", 50.0, &target), "globally seen");
        assert!(view.try_accept("SELECT x", 50.0, &target));
        assert!(!view.try_accept("SELECT x", 150.0, &target), "locally seen");
        assert!(view.try_accept("SELECT y", 50.0, &target));
        assert_eq!(view.d[0], 3.0);
        assert!(!view.would_consider(250.0, &target), "out of range");
    }
}
