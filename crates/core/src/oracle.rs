//! Shared cost oracle: memoized, thread-parallel DBMS costing.
//!
//! Every phase of the pipeline — profiling (§5.1), refinement (§5.2), the
//! BO predicate search (§5.3), and the baselines — ultimately asks the
//! DBMS the same question: *what does this statement cost?* The
//! [`CostOracle`] centralizes that question behind three optimizations:
//!
//! * **Prepared plans.** The hot loop costs thousands of bindings of the
//!   *same* template. [`CostOracle::prepare`] plans the template once
//!   (via [`minidb::PreparedTemplate`]) and
//!   [`CostOracle::cost_prepared`] re-costs the cached skeleton per
//!   binding — no rendering, lexing, parsing, or join-order search. Its
//!   memo is keyed by the compact `(template id, cost type, binding
//!   vector)` triple rather than kilobytes of rendered SQL.
//! * **Memoization.** Results are cached in sharded, mutex-guarded,
//!   *bounded* maps (per-shard capacity with second-chance eviction, so
//!   long runs cannot grow the cache without limit). One-off statements
//!   use the rendered-text key; prepared probes use the binding key.
//!   [`CostType::ExecutionTimeMicros`] is *never* memoized — the metric
//!   is a deterministic work-unit proxy, but it is kept as the
//!   always-execute control path so every probe exercises the executor.
//! * **Batch parallelism.** [`CostOracle::cost_batch`] and
//!   [`CostOracle::cost_prepared_batch`] evaluate a slice of probes on a
//!   `std::thread::scope` worker pool. A serial pre-pass resolves cache
//!   hits and dedupes the misses, so each distinct probe is planned once
//!   per batch and the hit/eval accounting is the same at any thread
//!   count; results are merged in submission order, making a batch
//!   bit-identical to a serial loop.
//!
//! **Probe accounting.** The oracle distinguishes *logical probes* (what
//! the algorithms asked for — the paper's evaluation-budget currency,
//! counted even on cache hits) from *physical evaluations* (statements
//! actually planned or executed). Physical counts are derived from the
//! number of distinct cache entries plus evictions plus un-memoized
//! probes, so they are deterministic even when concurrent workers race to
//! fill the same entry (the duplicated plan work is wasted, not counted).
//! With the default capacity the pipeline never evicts; tiny capacities
//! (set via [`CostOracle::with_cache_capacity`]) trade that determinism
//! guarantee for bounded memory under concurrent single probes.
//!
//! [`CostOracle::with_prepared`]`(false)` (the CLIs' `--no-prepared`)
//! reroutes the prepared API through instantiate-render-plan — the exact
//! pre-prepared behavior — as an escape hatch and an A/B lever; pipeline
//! output is bit-identical either way because recosting is a pure
//! function of the skeleton and bindings.

use crate::cost::{query_cost, CostType};
use bayesopt::parallel::parallel_map;
use minidb::{
    BindingBatch, Database, DbError, ExecScratch, PreparedExec, PreparedTemplate,
    RecostScratch,
};
use crate::lockorder::{self, OrderedMutex};
use sqlkit::{Select, Template, Value};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Shard count for the memo caches (reduces lock contention; must be a
/// power of two).
const SHARDS: usize = 16;

/// Default per-shard entry capacity. Generous enough that the pipeline
/// never evicts (16 shards × 65536 ≈ 1M entries), while still bounding a
/// pathological run.
const DEFAULT_SHARD_CAPACITY: usize = 65536;

/// Snapshot of the oracle's probe counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Cost questions asked by the algorithms (cache hits included).
    pub logical_probes: u64,
    /// Statements actually planned/executed: distinct memoized probes
    /// (including since-evicted ones) plus every non-memoizable
    /// (execution-time) probe.
    pub physical_evals: u64,
    /// Probes answered from a memo cache: `logical - physical`.
    pub cache_hits: u64,
    /// Prepared-path probes answered from the binding-key memo.
    pub prepared_hits: u64,
    /// Prepared-path probes that had to recost (or execute) the skeleton.
    pub prepared_misses: u64,
    /// Memo entries discarded by second-chance eviction (both caches).
    pub evictions: u64,
    /// Deficit-scheduler rounds that executed at least one interval task.
    pub scheduler_rounds: u64,
    /// Interval BO tasks executed by the deficit scheduler.
    pub scheduler_tasks: u64,
    /// Largest number of interval tasks launched in a single round.
    pub scheduler_peak_tasks: u64,
    /// Locally accepted queries rejected at a round barrier because
    /// another task filled the interval (or produced the same SQL) first.
    pub scheduler_overadmissions: u64,
}

/// A template planned once by the oracle; cheap to clone and share across
/// worker threads. Probe it with [`CostOracle::cost_prepared`] /
/// [`CostOracle::cost_prepared_batch`].
#[derive(Debug, Clone)]
pub struct PreparedHandle {
    /// Oracle-assigned id; the first component of the memo key.
    id: u64,
    plan: Arc<PreparedTemplate>,
    /// Lazily built vectorized execution plan for the execution-based
    /// cost types; shared across clones so the first batch's
    /// classification work is paid once per template.
    exec: Arc<OnceLock<Arc<PreparedExec>>>,
}

impl PreparedHandle {
    /// The template this handle was prepared from.
    pub fn template(&self) -> &Template {
        self.plan.template()
    }

    /// The underlying prepared plan.
    pub fn plan(&self) -> &PreparedTemplate {
        &self.plan
    }

    /// The vectorized execution plan ([`minidb::PreparedExec`]), built on
    /// first use. Preparation is infallible — unsupported shapes demote
    /// to a per-row scalar tier inside the plan.
    pub fn exec_plan(&self, db: &Database) -> Arc<PreparedExec> {
        self.exec
            .get_or_init(|| Arc::new(PreparedExec::prepare(db, self.plan.template())))
            .clone()
    }
}

/// Hashable stand-in for a bound [`Value`]. Floats are keyed by bit
/// pattern (so the key roundtrips NaN and signed zero deterministically);
/// strings by interned id (see [`CostOracle::intern`]), so building and
/// cloning a key never allocates per string — the memo hot path used to
/// clone every `String` on lookup *and* again on insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ValueKey {
    Int(i64),
    Float(u64),
    Str(u32),
    Bool(bool),
    Null,
}

/// Slots stored inline in a [`BindingKey`] before spilling to the heap.
/// Covers every template arity the pipeline generates in practice, so
/// the probe hot path builds, hashes, clones, and memoizes keys without
/// a single allocation.
const INLINE_KEY_SLOTS: usize = 4;

/// Binding vector in the template's (sorted) placeholder order; `None`
/// marks an unbound slot, so error results are memoizable too. Bindings
/// for ids the template does not mention cannot affect the result and are
/// excluded. Keys up to [`INLINE_KEY_SLOTS`] wide live inline (no
/// allocation per probe); wider templates spill to a boxed slice.
#[derive(Debug, Clone)]
enum BindingKey {
    Inline { len: u8, slots: [Option<ValueKey>; INLINE_KEY_SLOTS] },
    Heap(Box<[Option<ValueKey>]>),
}

impl BindingKey {
    fn collect(arity: usize, mut slot_of: impl FnMut(usize) -> Option<ValueKey>) -> BindingKey {
        if arity <= INLINE_KEY_SLOTS {
            let mut slots = [None; INLINE_KEY_SLOTS];
            for (i, slot) in slots.iter_mut().take(arity).enumerate() {
                *slot = slot_of(i);
            }
            BindingKey::Inline { len: arity as u8, slots }
        } else {
            BindingKey::Heap((0..arity).map(slot_of).collect())
        }
    }

    fn as_slice(&self) -> &[Option<ValueKey>] {
        match self {
            BindingKey::Inline { len, slots } => &slots[..*len as usize],
            BindingKey::Heap(slots) => slots,
        }
    }
}

impl PartialEq for BindingKey {
    fn eq(&self, other: &BindingKey) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for BindingKey {}

// Delegating to the slice `Hash` impl feeds the hasher the identical
// byte stream (length prefix + elements) a `Vec` key would, so shard
// routing is representation-independent: an inline key and a heap key
// with equal slots hash equally.
impl Hash for BindingKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

/// One bounded memo shard with second-chance (clock) eviction.
///
/// Entries are kept in a FIFO queue alongside the map; a lookup sets the
/// entry's reference bit, and eviction pops the queue, giving referenced
/// entries a second pass (re-queued with the bit cleared) and discarding
/// the first unreferenced one. Evictions are counted so physical-eval
/// accounting stays exact even after entries are dropped.
struct BoundedShard<K> {
    map: HashMap<K, (Result<f64, DbError>, bool)>,
    queue: VecDeque<K>,
    capacity: usize,
    evicted: u64,
}

impl<K: Hash + Eq + Clone> BoundedShard<K> {
    fn new(capacity: usize) -> BoundedShard<K> {
        BoundedShard {
            map: HashMap::new(),
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    // detlint::hot
    fn get(&mut self, key: &K) -> Option<Result<f64, DbError>> {
        self.map.get_mut(key).map(|(value, referenced)| {
            *referenced = true;
            value.clone()
        })
    }

    fn insert(&mut self, key: K, value: Result<f64, DbError>) {
        match self.map.entry(key.clone()) {
            // Concurrent workers racing on the same probe: keep one entry,
            // don't re-queue.
            Entry::Occupied(mut slot) => {
                slot.get_mut().0 = value;
                return;
            }
            Entry::Vacant(slot) => {
                // Fresh entries start referenced so the clock hand cannot
                // evict what it just admitted.
                slot.insert((value, true));
                self.queue.push_back(key);
            }
        }
        while self.map.len() > self.capacity {
            let Some(victim) = self.queue.pop_front() else { break };
            match self.map.get_mut(&victim) {
                Some((_, referenced)) if *referenced => {
                    *referenced = false;
                    self.queue.push_back(victim);
                }
                Some(_) => {
                    self.map.remove(&victim);
                    self.evicted += 1;
                }
                None => {}
            }
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Rendered statement + cost type → result (one-off statements).
type TextKey = (CostType, String);
/// Template id + cost type + binding vector → result (prepared probes).
type PreparedKey = (u64, CostType, BindingKey);

/// Caller-owned scratch arena for
/// [`CostOracle::cost_prepared_batch_columnar`].
///
/// Holds every buffer the columnar batch path needs — binding keys, the
/// per-shard probe partition, miss bookkeeping, and the [`BindingBatch`] /
/// [`RecostScratch`] handed to the recost layer — so repeated batches on a
/// warm oracle allocate nothing. Reusable across handles, cost types, and
/// batch sizes; `results` holds the last batch's outputs until the next
/// call.
#[derive(Debug, Default)]
pub struct ColumnarScratch {
    /// One result per probe, in submission order (the returned slice).
    results: Vec<Result<f64, DbError>>,
    /// One memo key per probe.
    keys: Vec<PreparedKey>,
    /// `shard_of[i]` = memo shard of probe `i`.
    shard_of: Vec<usize>,
    /// Probe indices grouped by shard (`SHARDS` buckets).
    by_shard: Vec<Vec<u32>>,
    /// First-appearance dedup of missed binding keys → miss slot.
    miss_slots: HashMap<BindingKey, usize>,
    /// Probe index of each distinct miss, per-shard submission order.
    misses: Vec<usize>,
    /// `(probe index, miss slot)` pairs to fill after evaluation.
    resolve_later: Vec<(usize, usize)>,
    /// One result per distinct miss.
    miss_results: Vec<Result<f64, DbError>>,
    /// `(miss slot, probe index)` of misses that passed binding
    /// validation and actually recost.
    evals: Vec<(usize, usize)>,
    /// Columnar bindings for the serial recost path.
    batch: BindingBatch,
    /// Plan-replay arena for the serial recost path.
    recost: RecostScratch,
    /// Execution arena for the serial vectorized-execution path
    /// (execution-based cost types).
    exec: ExecScratch,
}

impl ColumnarScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Memoized, parallel cost oracle over one database.
pub struct CostOracle<'db> {
    db: &'db Database,
    threads: usize,
    use_prepared: bool,
    /// Columnar batch fast path (default on; the `--no-columnar` escape
    /// hatch routes [`CostOracle::cost_prepared_batch_columnar`] through
    /// the per-probe batch path instead).
    use_columnar: bool,
    /// Artificial per-physical-probe latency. Models the ≥1 ms per
    /// `EXPLAIN` a real DBMS charges (the paper's setup), which the
    /// in-memory engine answers in microseconds. The sleep happens inside
    /// the worker that plans the probe, so concurrent tasks overlap it —
    /// the `bo_scheduler` bench uses this to measure how much DBMS
    /// latency the deficit scheduler hides. `None` (default) adds
    /// nothing; results are identical either way.
    probe_latency: Option<std::time::Duration>,
    text_shards: Vec<OrderedMutex<BoundedShard<TextKey>>>,
    prepared_shards: Vec<OrderedMutex<BoundedShard<PreparedKey>>>,
    /// Template text → handle, so re-preparing a template yields the same
    /// id (and therefore the same memo namespace). Held across plan
    /// construction so racing prepares of one template cannot split ids.
    templates: OrderedMutex<HashMap<String, PreparedHandle>>,
    next_template_id: AtomicU64,
    /// String value → interned id for [`ValueKey::Str`]. Ids are assigned
    /// in first-touch order; they only feed key hashing/equality, never
    /// results or counters, so id assignment order cannot affect output.
    interner: OrderedMutex<HashMap<Box<str>, u32>>,
    logical: AtomicU64,
    /// Execution-time probes (bypass the caches entirely).
    unmemoized: AtomicU64,
    /// Prepared-path logical probes (subset of `logical`).
    prepared_logical: AtomicU64,
    /// Prepared-path execution-time probes (subset of `unmemoized`).
    prepared_unmemoized: AtomicU64,
    scheduler_rounds: AtomicU64,
    scheduler_tasks: AtomicU64,
    scheduler_peak_tasks: AtomicU64,
    scheduler_overadmissions: AtomicU64,
}

impl<'db> CostOracle<'db> {
    /// New oracle with an explicit worker-thread count (`0` = all
    /// available cores).
    pub fn new(db: &'db Database, threads: usize) -> CostOracle<'db> {
        CostOracle {
            db,
            threads: bayesopt::parallel::resolve_threads(threads),
            use_prepared: true,
            use_columnar: true,
            probe_latency: None,
            text_shards: (0..SHARDS)
                .map(|_| {
                    OrderedMutex::new(
                        lockorder::TEXT_SHARDS,
                        BoundedShard::new(DEFAULT_SHARD_CAPACITY),
                    )
                })
                .collect(),
            prepared_shards: (0..SHARDS)
                .map(|_| {
                    OrderedMutex::new(
                        lockorder::PREPARED_SHARDS,
                        BoundedShard::new(DEFAULT_SHARD_CAPACITY),
                    )
                })
                .collect(),
            templates: OrderedMutex::new(lockorder::TEMPLATES, HashMap::new()),
            next_template_id: AtomicU64::new(0),
            interner: OrderedMutex::new(lockorder::INTERNER, HashMap::new()),
            logical: AtomicU64::new(0),
            unmemoized: AtomicU64::new(0),
            prepared_logical: AtomicU64::new(0),
            prepared_unmemoized: AtomicU64::new(0),
            scheduler_rounds: AtomicU64::new(0),
            scheduler_tasks: AtomicU64::new(0),
            scheduler_peak_tasks: AtomicU64::new(0),
            scheduler_overadmissions: AtomicU64::new(0),
        }
    }

    /// Interned id for a string value; allocates only on the first sight
    /// of each distinct string.
    fn intern(&self, s: &str) -> u32 {
        let mut interner = self.interner.lock();
        if let Some(&id) = interner.get(s) {
            return id;
        }
        let id = u32::try_from(interner.len()).expect("interner overflow");
        interner.insert(s.into(), id);
        id
    }

    fn value_key(&self, value: &Value) -> ValueKey {
        match value {
            Value::Int(i) => ValueKey::Int(*i),
            Value::Float(f) => ValueKey::Float(f.to_bits()),
            Value::Str(s) => ValueKey::Str(self.intern(s)),
            Value::Bool(b) => ValueKey::Bool(*b),
            Value::Null => ValueKey::Null,
        }
    }

    fn binding_key(&self, handle: &PreparedHandle, bindings: &HashMap<u32, Value>) -> BindingKey {
        let ids = handle.plan.placeholder_ids();
        BindingKey::collect(ids.len(), |slot| {
            bindings.get(&ids[slot]).map(|value| self.value_key(value))
        })
    }

    /// Toggle the prepared-plan fast path (default on). When off, the
    /// prepared API falls back to instantiate → render → plan with the
    /// rendered-text memo — the `--no-prepared` escape hatch.
    pub fn with_prepared(mut self, enabled: bool) -> CostOracle<'db> {
        self.use_prepared = enabled;
        self
    }

    /// Toggle the columnar batch fast path (default on). When off,
    /// [`CostOracle::cost_prepared_batch_columnar`] delegates to the
    /// per-probe batch path — the `--no-columnar` escape hatch. Results
    /// and accounting are bit-identical either way.
    pub fn with_columnar(mut self, enabled: bool) -> CostOracle<'db> {
        self.use_columnar = enabled;
        self
    }

    /// Whether batched prepared probes take the columnar fast path.
    pub fn columnar_enabled(&self) -> bool {
        self.use_columnar
    }

    /// Charge an artificial latency for every *physical* probe (planned
    /// or executed statement; memo hits stay free). A modeling knob for
    /// benchmarks: a real DBMS charges ≥1 ms per `EXPLAIN` round-trip,
    /// and that latency — unlike the in-memory engine's CPU time —
    /// overlaps across concurrent scheduler tasks. Results and all
    /// counters are bit-identical with and without it.
    pub fn with_probe_latency(mut self, latency: std::time::Duration) -> CostOracle<'db> {
        self.probe_latency = (!latency.is_zero()).then_some(latency);
        self
    }

    /// Sleep for the configured probe latency, if any. Called on the
    /// worker that performs the physical evaluation, inside the parallel
    /// section, so concurrent probes overlap their latency.
    fn charge_latency(&self) {
        if let Some(latency) = self.probe_latency {
            std::thread::sleep(latency);
        }
    }

    /// Override the per-shard memo capacity (entries per shard, floor 1).
    /// Intended for tests and memory-constrained runs; the pipeline
    /// default never evicts in practice.
    pub fn with_cache_capacity(self, per_shard: usize) -> CostOracle<'db> {
        for shard in &self.text_shards {
            shard.lock().capacity = per_shard.max(1);
        }
        for shard in &self.prepared_shards {
            shard.lock().capacity = per_shard.max(1);
        }
        self
    }

    /// The database this oracle costs against.
    pub fn db(&self) -> &'db Database {
        self.db
    }

    /// Resolved worker-thread count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether prepared probes take the recost fast path.
    pub fn prepared_enabled(&self) -> bool {
        self.use_prepared
    }

    /// Plan a template once for repeated recosting. Validates it exactly
    /// like [`Database::validate_template`]; the returned handle is cheap
    /// to clone and share. Idempotent: re-preparing a textually identical
    /// template returns the same handle (and memo namespace), so
    /// re-profiling a template keeps hitting its cache. Failed prepares
    /// are not cached.
    pub fn prepare(&self, template: &Template) -> Result<PreparedHandle, DbError> {
        let text = template.sql();
        let mut registry = self.templates.lock();
        if let Some(handle) = registry.get(&text) {
            return Ok(handle.clone());
        }
        let plan = PreparedTemplate::prepare(self.db, template)?;
        let handle = PreparedHandle {
            id: self.next_template_id.fetch_add(1, Ordering::Relaxed),
            plan: Arc::new(plan),
            exec: Arc::new(OnceLock::new()),
        };
        registry.insert(text, handle.clone());
        Ok(handle)
    }

    /// Cost one statement, rendering its SQL internally. Counts one
    /// logical probe; memoized unless `cost_type` requires execution.
    pub fn query_cost(
        &self,
        select: &sqlkit::Select,
        cost_type: CostType,
    ) -> Result<f64, DbError> {
        self.cost_rendered(&select.to_string(), select, cost_type)
    }

    /// Cost one statement whose SQL text the caller already rendered
    /// (avoids re-rendering when the text is needed for acceptance
    /// bookkeeping anyway).
    pub fn cost_rendered(
        &self,
        sql: &str,
        select: &sqlkit::Select,
        cost_type: CostType,
    ) -> Result<f64, DbError> {
        self.logical.fetch_add(1, Ordering::Relaxed);
        self.cost_text(sql, select, cost_type)
    }

    /// Text-keyed costing without the logical-probe count (shared by the
    /// rendered API and the prepared fallback path).
    fn cost_text(
        &self,
        sql: &str,
        select: &sqlkit::Select,
        cost_type: CostType,
    ) -> Result<f64, DbError> {
        // ActualCardinality requires execution but is still a pure
        // function of the statement, so it stays memoizable; only
        // wall-clock timings bypass the cache.
        if cost_type == CostType::ExecutionTimeMicros {
            self.unmemoized.fetch_add(1, Ordering::Relaxed);
            self.charge_latency();
            return query_cost(self.db, select, cost_type);
        }
        let key = (cost_type, sql.to_string());
        let shard = &self.text_shards[shard_index(&key)];
        if let Some(cached) = shard.lock().get(&key) {
            return cached;
        }
        self.charge_latency();
        let result = query_cost(self.db, select, cost_type);
        shard.lock().insert(key, result.clone());
        result
    }

    /// Cost one binding of a prepared template. Counts one logical probe;
    /// memoized under the `(template id, cost type, binding vector)` key
    /// unless `cost_type` requires execution.
    pub fn cost_prepared(
        &self,
        handle: &PreparedHandle,
        bindings: &HashMap<u32, Value>,
        cost_type: CostType,
    ) -> Result<f64, DbError> {
        self.logical.fetch_add(1, Ordering::Relaxed);
        if !self.use_prepared {
            let select = instantiate(handle, bindings)?;
            return self.cost_text(&select.to_string(), &select, cost_type);
        }
        self.prepared_logical.fetch_add(1, Ordering::Relaxed);
        if cost_type == CostType::ExecutionTimeMicros {
            self.unmemoized.fetch_add(1, Ordering::Relaxed);
            self.prepared_unmemoized.fetch_add(1, Ordering::Relaxed);
            return self.eval_prepared(handle, bindings, cost_type);
        }
        let key = (handle.id, cost_type, self.binding_key(handle, bindings));
        let shard = &self.prepared_shards[shard_index(&key)];
        if let Some(cached) = shard.lock().get(&key) {
            return cached;
        }
        let result = self.eval_prepared(handle, bindings, cost_type);
        shard.lock().insert(key, result.clone());
        result
    }

    /// Cost a batch of bindings of one prepared template, in submission
    /// order. Counts one logical probe per binding; cache misses are
    /// deduplicated serially (by binding key) and recosted on up to
    /// [`CostOracle::threads`] scoped workers, so the result vector — and
    /// the hit/eval accounting — is identical to a serial loop.
    pub fn cost_prepared_batch(
        &self,
        handle: &PreparedHandle,
        bindings_list: &[HashMap<u32, Value>],
        cost_type: CostType,
    ) -> Vec<Result<f64, DbError>> {
        self.cost_prepared_batch_on(self.threads, handle, bindings_list, cost_type)
    }

    /// [`CostOracle::cost_prepared_batch`] with an explicit worker-thread
    /// budget for this batch only. The deficit scheduler uses this to
    /// split the global thread budget between concurrent interval tasks
    /// and each task's inner batch costing; results and accounting are
    /// identical at any `threads` value.
    pub fn cost_prepared_batch_on(
        &self,
        threads: usize,
        handle: &PreparedHandle,
        bindings_list: &[HashMap<u32, Value>],
        cost_type: CostType,
    ) -> Vec<Result<f64, DbError>> {
        let threads = threads.clamp(1, self.threads);
        self.logical.fetch_add(bindings_list.len() as u64, Ordering::Relaxed);
        if !self.use_prepared {
            return self.fallback_batch(threads, handle, bindings_list, cost_type);
        }
        self.prepared_logical.fetch_add(bindings_list.len() as u64, Ordering::Relaxed);
        if cost_type == CostType::ExecutionTimeMicros {
            // Not memoizable; still parallel, still order-preserving.
            self.unmemoized.fetch_add(bindings_list.len() as u64, Ordering::Relaxed);
            self.prepared_unmemoized.fetch_add(bindings_list.len() as u64, Ordering::Relaxed);
            return parallel_map(threads, bindings_list, |_, bindings| {
                self.eval_prepared(handle, bindings, cost_type)
            });
        }

        // Serial pre-pass: resolve cache hits, dedupe misses in
        // first-appearance order.
        let keys: Vec<BindingKey> =
            bindings_list.iter().map(|b| self.binding_key(handle, b)).collect();
        let mut results: Vec<Option<Result<f64, DbError>>> = vec![None; bindings_list.len()];
        let mut miss_slots: HashMap<&BindingKey, usize> = HashMap::new();
        let mut misses: Vec<usize> = Vec::new(); // probe index of first appearance
        let mut resolve_later: Vec<(usize, usize)> = Vec::new(); // (probe, miss slot)
        for (i, key) in keys.iter().enumerate() {
            let full_key = (handle.id, cost_type, key.clone());
            let shard = &self.prepared_shards[shard_index(&full_key)];
            if let Some(cached) = shard.lock().get(&full_key) {
                results[i] = Some(cached);
            } else if let Some(&slot) = miss_slots.get(key) {
                resolve_later.push((i, slot));
            } else {
                let slot = misses.len();
                miss_slots.insert(key, slot);
                misses.push(i);
                resolve_later.push((i, slot));
            }
        }

        // Recost each distinct miss exactly once, in parallel.
        let computed = parallel_map(threads, &misses, |_, &probe_idx| {
            self.eval_prepared(handle, &bindings_list[probe_idx], cost_type)
        });
        for (slot, &probe_idx) in misses.iter().enumerate() {
            let full_key = (handle.id, cost_type, keys[probe_idx].clone());
            self.prepared_shards[shard_index(&full_key)]
                .lock()
                .insert(full_key, computed[slot].clone());
        }
        for (probe_idx, slot) in resolve_later {
            results[probe_idx] = Some(computed[slot].clone());
        }
        results.into_iter().map(|r| r.expect("every probe resolved")).collect()
    }

    /// `--no-prepared` batch path: instantiate every binding and route
    /// through the rendered-text batch machinery (exact pre-prepared
    /// behavior, including the text-keyed memo).
    fn fallback_batch(
        &self,
        threads: usize,
        handle: &PreparedHandle,
        bindings_list: &[HashMap<u32, Value>],
        cost_type: CostType,
    ) -> Vec<Result<f64, DbError>> {
        let mut results: Vec<Option<Result<f64, DbError>>> = vec![None; bindings_list.len()];
        let mut slots: Vec<usize> = Vec::new();
        let mut probes: Vec<(String, sqlkit::Select)> = Vec::new();
        for (i, bindings) in bindings_list.iter().enumerate() {
            match instantiate(handle, bindings) {
                Ok(select) => {
                    slots.push(i);
                    probes.push((select.to_string(), select));
                }
                Err(error) => results[i] = Some(Err(error)),
            }
        }
        let computed = self.cost_batch_inner(threads, &probes, cost_type);
        for (&slot, result) in slots.iter().zip(computed) {
            results[slot] = Some(result);
        }
        results.into_iter().map(|r| r.expect("every probe resolved")).collect()
    }

    /// Columnar batch costing with this oracle's full thread budget; see
    /// [`CostOracle::cost_prepared_batch_columnar_on`].
    pub fn cost_prepared_batch_columnar<'s>(
        &self,
        handle: &PreparedHandle,
        bindings_list: &[HashMap<u32, Value>],
        cost_type: CostType,
        scratch: &'s mut ColumnarScratch,
    ) -> &'s [Result<f64, DbError>] {
        self.cost_prepared_batch_columnar_on(self.threads, handle, bindings_list, cost_type, scratch)
    }

    /// Columnar batch fast path: bit-identical results and identical
    /// hit/eval/eviction accounting to
    /// [`CostOracle::cost_prepared_batch_on`], with the per-probe
    /// overheads batched away:
    ///
    /// * binding keys are built inline (no per-probe allocation) and
    ///   partitioned by memo shard, so each shard lock is taken **once**
    ///   for the batch's bulk hit-lookup and once for its bulk insert —
    ///   not once per probe;
    /// * deduplicated misses are recosted through
    ///   [`minidb::PreparedTemplate::recost_batch`]'s columnar replay
    ///   (chunked across workers when the miss count warrants it);
    /// * results land in the caller-owned [`ColumnarScratch`], so a
    ///   fully-warm batch performs no allocation at all.
    ///
    /// Within each shard, probes keep submission order — lookups set the
    /// same reference bits and inserts happen in the same first-appearance
    /// order as the per-probe path, so second-chance eviction behaves
    /// identically at any thread count. The execution-based cost types
    /// route their evaluations through the vectorized execution path
    /// ([`minidb::PreparedExec::execute_batch`]) with the same semantics:
    /// `ActualCardinality` keeps the memo (execute each distinct miss
    /// once), `ExecutionTimeMicros` stays unmemoized (execute every
    /// probe). The escape hatches (`--no-columnar`, `--no-prepared`)
    /// delegate to the per-probe path wholesale.
    pub fn cost_prepared_batch_columnar_on<'s>(
        &self,
        threads: usize,
        handle: &PreparedHandle,
        bindings_list: &[HashMap<u32, Value>],
        cost_type: CostType,
        scratch: &'s mut ColumnarScratch,
    ) -> &'s [Result<f64, DbError>] {
        if !self.use_columnar || !self.use_prepared {
            // Delegate before touching any counter — the per-probe path
            // does its own accounting.
            let results = self.cost_prepared_batch_on(threads, handle, bindings_list, cost_type);
            scratch.results.clear();
            scratch.results.extend(results);
            return &scratch.results;
        }
        let threads = threads.clamp(1, self.threads);
        let n = bindings_list.len();
        self.logical.fetch_add(n as u64, Ordering::Relaxed);
        self.prepared_logical.fetch_add(n as u64, Ordering::Relaxed);

        let ColumnarScratch {
            results,
            keys,
            shard_of,
            by_shard,
            miss_slots,
            misses,
            resolve_later,
            miss_results,
            evals,
            batch,
            recost,
            exec,
        } = scratch;

        if cost_type == CostType::ExecutionTimeMicros {
            // Never memoized: every probe executes, like the per-probe
            // path (same unmemoized counters, latency charged per row).
            // The columnar win here is the prepared execution plan —
            // hoisted subqueries and selection-vector kernels — not the
            // memo.
            self.unmemoized.fetch_add(n as u64, Ordering::Relaxed);
            self.prepared_unmemoized.fetch_add(n as u64, Ordering::Relaxed);
            let ids = handle.plan().placeholder_ids();
            results.clear();
            results.resize(n, Ok(0.0)); // placeholder; every slot overwritten
            evals.clear();
            for (i, bindings) in bindings_list.iter().enumerate() {
                if ids.iter().all(|id| bindings.contains_key(id)) {
                    evals.push((i, i));
                } else {
                    // Match the per-probe path's instantiate error for a
                    // missing binding.
                    self.charge_latency();
                    results[i] = Err(match instantiate(handle, bindings) {
                        Err(error) => error,
                        Ok(_) => unreachable!("missing binding fails instantiation"),
                    });
                }
            }
            self.exec_batch_fill(
                threads,
                handle,
                bindings_list,
                evals,
                cost_type,
                batch,
                exec,
                results,
            );
            return results.as_slice();
        }

        // ---- key construction + shard partition (no locks) ----------
        keys.clear();
        shard_of.clear();
        if by_shard.len() != SHARDS {
            by_shard.resize_with(SHARDS, Vec::new);
        }
        for shard in by_shard.iter_mut() {
            shard.clear();
        }
        for bindings in bindings_list {
            let key = (handle.id, cost_type, self.binding_key(handle, bindings));
            let shard = shard_index(&key);
            by_shard[shard].push(keys.len() as u32);
            shard_of.push(shard);
            keys.push(key);
        }

        // ---- phase 1: bulk hit lookup, one lock per populated shard --
        // Within a shard, probes run in submission order, so reference
        // bits are set exactly as the per-probe pre-pass would set them;
        // misses are discovered (and deduplicated) in an order that
        // preserves per-shard first appearance.
        results.clear();
        results.resize(n, Ok(0.0)); // placeholder; every slot overwritten below
        miss_slots.clear();
        misses.clear();
        resolve_later.clear();
        for (shard_idx, probe_indices) in by_shard.iter().enumerate() {
            if probe_indices.is_empty() {
                continue;
            }
            let mut shard = self.prepared_shards[shard_idx].lock();
            for &i in probe_indices.iter() {
                let i = i as usize;
                if let Some(cached) = shard.get(&keys[i]) {
                    results[i] = cached;
                } else if let Some(&slot) = miss_slots.get(&keys[i].2) {
                    resolve_later.push((i, slot));
                } else {
                    let slot = misses.len();
                    miss_slots.insert(keys[i].2.clone(), slot);
                    misses.push(i);
                    resolve_later.push((i, slot));
                }
            }
        }

        // ---- phase 2: evaluate each distinct miss exactly once -------
        miss_results.clear();
        miss_results.resize(misses.len(), Ok(0.0));
        if !misses.is_empty() {
            match cost_type {
                CostType::Cardinality | CostType::PlanCost => {
                    // Pre-validate so every batched row recosts cleanly;
                    // an unbound row gets the scalar error (smallest
                    // missing id), exactly like `recost` would return.
                    let ids = handle.plan().placeholder_ids();
                    evals.clear();
                    for (slot, &probe_idx) in misses.iter().enumerate() {
                        match ids.iter().find(|id| !bindings_list[probe_idx].contains_key(id)) {
                            Some(&id) => {
                                miss_results[slot] = Err(DbError::UnboundPlaceholder(id));
                            }
                            None => evals.push((slot, probe_idx)),
                        }
                    }
                    let pick = |rows: f64, cost: f64| {
                        if cost_type == CostType::Cardinality {
                            rows
                        } else {
                            cost
                        }
                    };
                    let chunks = threads.min(evals.len());
                    if chunks <= 1 {
                        // Serial: reuse the scratch-owned batch + arena
                        // (zero steady-state allocation).
                        batch.reset(ids);
                        for &(_, probe_idx) in evals.iter() {
                            self.charge_latency();
                            batch
                                .push_row(&bindings_list[probe_idx])
                                .expect("miss bindings pre-validated");
                        }
                        match handle.plan().recost_batch(self.db, batch, recost) {
                            Ok(values) => {
                                for (&(slot, _), &(rows, cost)) in evals.iter().zip(values) {
                                    miss_results[slot] = Ok(pick(rows, cost));
                                }
                            }
                            Err(error) => {
                                for &(slot, _) in evals.iter() {
                                    miss_results[slot] = Err(error.clone());
                                }
                            }
                        }
                    } else {
                        // Contiguous chunks across workers; each worker
                        // recosts its sub-batch columnar-style. Chunk
                        // boundaries cannot affect results (each row is a
                        // pure function of its bindings).
                        let per = evals.len().div_ceil(chunks);
                        let ranges: Vec<(usize, usize)> = (0..chunks)
                            .map(|c| (c * per, ((c + 1) * per).min(evals.len())))
                            .filter(|&(start, end)| start < end)
                            .collect();
                        let computed = parallel_map(threads, &ranges, |_, &(start, end)| {
                            let mut chunk_batch = BindingBatch::new(ids.to_vec());
                            let mut chunk_scratch = RecostScratch::new();
                            for &(_, probe_idx) in &evals[start..end] {
                                self.charge_latency();
                                chunk_batch
                                    .push_row(&bindings_list[probe_idx])
                                    .expect("miss bindings pre-validated");
                            }
                            match handle.plan().recost_batch(
                                self.db,
                                &chunk_batch,
                                &mut chunk_scratch,
                            ) {
                                Ok(values) => values
                                    .iter()
                                    .map(|&(rows, cost)| Ok(pick(rows, cost)))
                                    .collect::<Vec<_>>(),
                                Err(error) => {
                                    (start..end).map(|_| Err(error.clone())).collect()
                                }
                            }
                        });
                        for (&(start, end), chunk) in ranges.iter().zip(computed) {
                            for (&(slot, _), result) in
                                evals[start..end].iter().zip(chunk)
                            {
                                miss_results[slot] = result;
                            }
                        }
                    }
                }
                CostType::ActualCardinality | CostType::ExecutionTimeMicros => {
                    // ExecutionTimeMicros took the unmemoized arm above;
                    // actual cardinality executes each distinct miss
                    // through the vectorized execution path, then
                    // memoizes like any other estimate.
                    let ids = handle.plan().placeholder_ids();
                    evals.clear();
                    for (slot, &probe_idx) in misses.iter().enumerate() {
                        let bindings = &bindings_list[probe_idx];
                        if ids.iter().all(|id| bindings.contains_key(id)) {
                            evals.push((slot, probe_idx));
                        } else {
                            // Match the per-probe path's instantiate
                            // error for a missing binding.
                            self.charge_latency();
                            miss_results[slot] = Err(match instantiate(handle, bindings) {
                                Err(error) => error,
                                Ok(_) => {
                                    unreachable!("missing binding fails instantiation")
                                }
                            });
                        }
                    }
                    self.exec_batch_fill(
                        threads,
                        handle,
                        bindings_list,
                        evals,
                        cost_type,
                        batch,
                        exec,
                        miss_results,
                    );
                }
            }
        }

        // ---- phase 3: bulk insert, one lock per populated shard ------
        // `misses` is already shard-grouped (phase 1 walked the shards in
        // order) with submission order preserved within each shard, so
        // per-shard insert order — and therefore second-chance eviction
        // accounting — matches the per-probe path exactly.
        let mut slot = 0;
        while slot < misses.len() {
            let shard_idx = shard_of[misses[slot]];
            let mut shard = self.prepared_shards[shard_idx].lock();
            while slot < misses.len() && shard_of[misses[slot]] == shard_idx {
                let probe_idx = misses[slot];
                shard.insert(keys[probe_idx].clone(), miss_results[slot].clone());
                slot += 1;
            }
        }

        for &(probe_idx, slot) in resolve_later.iter() {
            results[probe_idx] = miss_results[slot].clone();
        }
        results.as_slice()
    }

    /// Evaluate `(output slot, probe index)` pairs through the prepared
    /// vectorized execution path ([`minidb::PreparedExec::execute_batch`]),
    /// writing each probe's result — `ActualCardinality` takes the
    /// cardinality, `ExecutionTimeMicros` the work-unit time — into
    /// `out[slot]`. Callers pre-validate bindings, so every pair
    /// instantiates cleanly. A serial batch reuses the caller-owned
    /// scratch (zero steady-state allocation); larger batches split into
    /// contiguous chunks across workers — chunk boundaries cannot affect
    /// results, each row being a pure function of its bindings. Every
    /// row charges the probe latency on the worker that executes it,
    /// like the per-probe path.
    #[allow(clippy::too_many_arguments)]
    fn exec_batch_fill(
        &self,
        threads: usize,
        handle: &PreparedHandle,
        bindings_list: &[HashMap<u32, Value>],
        evals: &[(usize, usize)],
        cost_type: CostType,
        batch: &mut BindingBatch,
        exec_scratch: &mut ExecScratch,
        out: &mut [Result<f64, DbError>],
    ) {
        if evals.is_empty() {
            return;
        }
        let pick = |&(cardinality, work_micros): &(f64, f64)| {
            if cost_type == CostType::ActualCardinality {
                cardinality
            } else {
                work_micros
            }
        };
        let ids = handle.plan().placeholder_ids();
        // Build the execution plan serially so parallel chunks share one
        // classification pass.
        let exec = handle.exec_plan(self.db);
        let chunks = threads.min(evals.len());
        if chunks <= 1 {
            batch.reset(ids);
            for &(_, probe_idx) in evals {
                self.charge_latency();
                batch
                    .push_row(&bindings_list[probe_idx])
                    .expect("eval bindings pre-validated");
            }
            match exec.execute_batch(self.db, batch, exec_scratch) {
                Ok(values) => {
                    for (&(slot, _), value) in evals.iter().zip(values) {
                        out[slot] = value.as_ref().map(pick).map_err(DbError::clone);
                    }
                }
                Err(error) => {
                    for &(slot, _) in evals {
                        out[slot] = Err(error.clone());
                    }
                }
            }
        } else {
            let per = evals.len().div_ceil(chunks);
            let ranges: Vec<(usize, usize)> = (0..chunks)
                .map(|c| (c * per, ((c + 1) * per).min(evals.len())))
                .filter(|&(start, end)| start < end)
                .collect();
            let computed = parallel_map(threads, &ranges, |_, &(start, end)| {
                let mut chunk_batch = BindingBatch::new(ids.to_vec());
                let mut chunk_scratch = ExecScratch::new();
                for &(_, probe_idx) in &evals[start..end] {
                    self.charge_latency();
                    chunk_batch
                        .push_row(&bindings_list[probe_idx])
                        .expect("eval bindings pre-validated");
                }
                match exec.execute_batch(self.db, &chunk_batch, &mut chunk_scratch) {
                    Ok(values) => values
                        .iter()
                        .map(|value| value.as_ref().map(pick).map_err(DbError::clone))
                        .collect::<Vec<_>>(),
                    Err(error) => (start..end).map(|_| Err(error.clone())).collect(),
                }
            });
            for (&(start, end), chunk) in ranges.iter().zip(computed) {
                for (&(slot, _), result) in evals[start..end].iter().zip(chunk) {
                    out[slot] = result;
                }
            }
        }
    }

    /// Recost (or, for execution metrics, instantiate and execute) one
    /// prepared probe, bypassing the caches.
    fn eval_prepared(
        &self,
        handle: &PreparedHandle,
        bindings: &HashMap<u32, Value>,
        cost_type: CostType,
    ) -> Result<f64, DbError> {
        self.charge_latency();
        match cost_type {
            CostType::Cardinality => {
                self.handle_recost(handle, bindings).map(|(rows, _)| rows)
            }
            CostType::PlanCost => {
                self.handle_recost(handle, bindings).map(|(_, cost)| cost)
            }
            CostType::ActualCardinality | CostType::ExecutionTimeMicros => {
                let select = instantiate(handle, bindings)?;
                query_cost(self.db, &select, cost_type)
            }
        }
    }

    fn handle_recost(
        &self,
        handle: &PreparedHandle,
        bindings: &HashMap<u32, Value>,
    ) -> Result<(f64, f64), DbError> {
        handle.plan.recost(self.db, bindings)
    }

    /// Cost a batch of `(sql, statement)` probes, in submission order.
    ///
    /// Counts one logical probe per item. Cache misses are deduplicated
    /// serially and then planned on up to [`CostOracle::threads`] scoped
    /// workers, so the result vector — and the hit/eval accounting — is
    /// identical to costing the batch serially.
    pub fn cost_batch(
        &self,
        probes: &[(String, sqlkit::Select)],
        cost_type: CostType,
    ) -> Vec<Result<f64, DbError>> {
        self.logical.fetch_add(probes.len() as u64, Ordering::Relaxed);
        self.cost_batch_inner(self.threads, probes, cost_type)
    }

    fn cost_batch_inner(
        &self,
        threads: usize,
        probes: &[(String, sqlkit::Select)],
        cost_type: CostType,
    ) -> Vec<Result<f64, DbError>> {
        if cost_type == CostType::ExecutionTimeMicros {
            // Not memoizable; still parallel, still order-preserving.
            self.unmemoized.fetch_add(probes.len() as u64, Ordering::Relaxed);
            return parallel_map(threads, probes, |_, (_, select)| {
                self.charge_latency();
                query_cost(self.db, select, cost_type)
            });
        }

        // Serial pre-pass: resolve cache hits, dedupe misses in
        // first-appearance order.
        let mut results: Vec<Option<Result<f64, DbError>>> = vec![None; probes.len()];
        let mut miss_slots: HashMap<&str, usize> = HashMap::new();
        let mut misses: Vec<usize> = Vec::new(); // probe index of first appearance
        let mut resolve_later: Vec<(usize, usize)> = Vec::new(); // (probe, miss slot)
        for (i, (sql, _)) in probes.iter().enumerate() {
            let key = (cost_type, sql.clone());
            let shard = &self.text_shards[shard_index(&key)];
            if let Some(cached) = shard.lock().get(&key) {
                results[i] = Some(cached);
            } else if let Some(&slot) = miss_slots.get(sql.as_str()) {
                resolve_later.push((i, slot));
            } else {
                let slot = misses.len();
                miss_slots.insert(sql.as_str(), slot);
                misses.push(i);
                resolve_later.push((i, slot));
            }
        }

        // Plan each distinct miss exactly once, in parallel.
        let computed = parallel_map(threads, &misses, |_, &probe_idx| {
            self.charge_latency();
            query_cost(self.db, &probes[probe_idx].1, cost_type)
        });
        for (slot, &probe_idx) in misses.iter().enumerate() {
            let key = (cost_type, probes[probe_idx].0.clone());
            self.text_shards[shard_index(&key)].lock().insert(key, computed[slot].clone());
        }
        for (probe_idx, slot) in resolve_later {
            results[probe_idx] = Some(computed[slot].clone());
        }
        results.into_iter().map(|r| r.expect("every probe resolved")).collect()
    }

    /// Current probe counters. Derived from deterministic quantities
    /// (logical counters, cache sizes, eviction and un-memoized
    /// counters), so identical runs report identical stats at any thread
    /// count (provided the caches are not evicting, which the default
    /// capacity guarantees in practice).
    pub fn stats(&self) -> OracleStats {
        let mut text_distinct = 0u64;
        let mut text_evicted = 0u64;
        for shard in &self.text_shards {
            let guard = shard.lock();
            text_distinct += guard.len() as u64;
            text_evicted += guard.evicted;
        }
        let mut prepared_distinct = 0u64;
        let mut prepared_evicted = 0u64;
        for shard in &self.prepared_shards {
            let guard = shard.lock();
            prepared_distinct += guard.len() as u64;
            prepared_evicted += guard.evicted;
        }
        let logical = self.logical.load(Ordering::Relaxed);
        let unmemoized = self.unmemoized.load(Ordering::Relaxed);
        let prepared_logical = self.prepared_logical.load(Ordering::Relaxed);
        let prepared_unmemoized = self.prepared_unmemoized.load(Ordering::Relaxed);
        let physical =
            text_distinct + text_evicted + prepared_distinct + prepared_evicted + unmemoized;
        let prepared_misses = prepared_distinct + prepared_evicted + prepared_unmemoized;
        OracleStats {
            logical_probes: logical,
            physical_evals: physical,
            cache_hits: logical.saturating_sub(physical),
            prepared_hits: prepared_logical.saturating_sub(prepared_misses),
            prepared_misses,
            evictions: text_evicted + prepared_evicted,
            scheduler_rounds: self.scheduler_rounds.load(Ordering::Relaxed),
            scheduler_tasks: self.scheduler_tasks.load(Ordering::Relaxed),
            scheduler_peak_tasks: self.scheduler_peak_tasks.load(Ordering::Relaxed),
            scheduler_overadmissions: self.scheduler_overadmissions.load(Ordering::Relaxed),
        }
    }

    /// Record one deficit-scheduler round: how many interval tasks ran
    /// concurrently and how many locally accepted queries the round
    /// barrier rejected. Called from the round merge (serial), so the
    /// counters are deterministic at any thread count.
    pub fn note_scheduler_round(&self, tasks: u64, overadmissions: u64) {
        self.scheduler_rounds.fetch_add(1, Ordering::Relaxed);
        self.scheduler_tasks.fetch_add(tasks, Ordering::Relaxed);
        self.scheduler_peak_tasks.fetch_max(tasks, Ordering::Relaxed);
        self.scheduler_overadmissions.fetch_add(overadmissions, Ordering::Relaxed);
    }

    /// Serialize the oracle's full state for a checkpoint: interner,
    /// prepared-template registry, both memo caches (entries in
    /// clock-queue order, with reference bits and eviction counts), and
    /// the raw counters. [`CostOracle::restore_state`] of this value into
    /// a fresh oracle reproduces every future memo hit, eviction, and
    /// derived [`OracleStats`] field exactly.
    pub fn export_state(&self) -> crate::snapshot::OracleState {
        use crate::snapshot::{OracleCounters, OracleState, PreparedEntry, ShardState, TextEntry};

        // The interner and registry are hash maps; inverting them into
        // vectors indexed by their (densely assigned) ids yields a
        // canonical order regardless of map iteration order.
        let interner_guard = self.interner.lock();
        let mut interner = vec![String::new(); interner_guard.len()];
        for (text, &id) in interner_guard.iter() {
            interner[id as usize] = text.to_string();
        }
        drop(interner_guard);

        let registry = self.templates.lock();
        let mut templates = vec![String::new(); registry.len()];
        for (sql, handle) in registry.iter() {
            templates[handle.id as usize] = sql.clone();
        }
        drop(registry);

        let text_shards = self
            .text_shards
            .iter()
            .map(|mutex| {
                let shard = mutex.lock();
                let entries = shard
                    .queue
                    .iter()
                    .filter_map(|key| {
                        shard.map.get(key).map(|(value, referenced)| TextEntry {
                            cost_type: key.0,
                            sql: key.1.clone(),
                            value: value.clone(),
                            referenced: *referenced,
                        })
                    })
                    .collect();
                ShardState { capacity: shard.capacity as u64, evicted: shard.evicted, entries }
            })
            .collect();

        let prepared_shards = self
            .prepared_shards
            .iter()
            .map(|mutex| {
                let shard = mutex.lock();
                let entries = shard
                    .queue
                    .iter()
                    .filter_map(|key| {
                        shard.map.get(key).map(|(value, referenced)| PreparedEntry {
                            template_id: key.0,
                            cost_type: key.1,
                            key: key.2.as_slice().iter().map(|slot| slot.map(export_value_key)).collect(),
                            value: value.clone(),
                            referenced: *referenced,
                        })
                    })
                    .collect();
                ShardState { capacity: shard.capacity as u64, evicted: shard.evicted, entries }
            })
            .collect();

        OracleState {
            interner,
            templates,
            text_shards,
            prepared_shards,
            counters: OracleCounters {
                logical: self.logical.load(Ordering::Relaxed),
                unmemoized: self.unmemoized.load(Ordering::Relaxed),
                prepared_logical: self.prepared_logical.load(Ordering::Relaxed),
                prepared_unmemoized: self.prepared_unmemoized.load(Ordering::Relaxed),
                scheduler_rounds: self.scheduler_rounds.load(Ordering::Relaxed),
                scheduler_tasks: self.scheduler_tasks.load(Ordering::Relaxed),
                scheduler_peak_tasks: self.scheduler_peak_tasks.load(Ordering::Relaxed),
                scheduler_overadmissions: self.scheduler_overadmissions.load(Ordering::Relaxed),
            },
        }
    }

    /// Restore state exported by [`CostOracle::export_state`] (typically
    /// into a freshly constructed oracle over the same database).
    /// Prepared plans are rebuilt by re-preparing each registry template
    /// under its recorded id; memo entries are reinstalled into their
    /// recorded shards in queue order, so second-chance eviction replays
    /// identically. Errors (snapshot/build mismatch, template that no
    /// longer prepares) leave a partially restored oracle — callers
    /// should discard it on `Err`.
    pub fn restore_state(&self, state: &crate::snapshot::OracleState) -> Result<(), String> {
        if state.text_shards.len() != SHARDS || state.prepared_shards.len() != SHARDS {
            return Err(format!(
                "snapshot has {}+{} memo shards, this build uses {SHARDS}+{SHARDS}",
                state.text_shards.len(),
                state.prepared_shards.len()
            ));
        }

        {
            let mut interner = self.interner.lock();
            interner.clear();
            for (id, text) in state.interner.iter().enumerate() {
                let id = u32::try_from(id).map_err(|_| "interner overflow".to_string())?;
                interner.insert(text.as_str().into(), id);
            }
        }

        {
            let mut registry = self.templates.lock();
            registry.clear();
            for (id, sql) in state.templates.iter().enumerate() {
                let template = sqlkit::parse_template(sql)
                    .map_err(|e| format!("snapshot template {id} no longer parses: {e}"))?;
                let plan = PreparedTemplate::prepare(self.db, &template)
                    .map_err(|e| format!("snapshot template {id} no longer prepares: {e:?}"))?;
                registry.insert(
                    sql.clone(),
                    PreparedHandle {
                        id: id as u64,
                        plan: Arc::new(plan),
                        exec: Arc::new(OnceLock::new()),
                    },
                );
            }
            self.next_template_id.store(state.templates.len() as u64, Ordering::Relaxed);
        }

        for (mutex, stored) in self.text_shards.iter().zip(&state.text_shards) {
            let mut shard = mutex.lock();
            shard.map.clear();
            shard.queue.clear();
            shard.capacity = usize::try_from(stored.capacity).unwrap_or(usize::MAX).max(1);
            shard.evicted = stored.evicted;
            for entry in &stored.entries {
                let key = (entry.cost_type, entry.sql.clone());
                shard.map.insert(key.clone(), (entry.value.clone(), entry.referenced));
                shard.queue.push_back(key);
            }
        }

        for (mutex, stored) in self.prepared_shards.iter().zip(&state.prepared_shards) {
            let mut shard = mutex.lock();
            shard.map.clear();
            shard.queue.clear();
            shard.capacity = usize::try_from(stored.capacity).unwrap_or(usize::MAX).max(1);
            shard.evicted = stored.evicted;
            for entry in &stored.entries {
                let binding = BindingKey::collect(entry.key.len(), |slot| {
                    entry.key[slot].map(import_value_key)
                });
                let key = (entry.template_id, entry.cost_type, binding);
                shard.map.insert(key.clone(), (entry.value.clone(), entry.referenced));
                shard.queue.push_back(key);
            }
        }

        let c = &state.counters;
        self.logical.store(c.logical, Ordering::Relaxed);
        self.unmemoized.store(c.unmemoized, Ordering::Relaxed);
        self.prepared_logical.store(c.prepared_logical, Ordering::Relaxed);
        self.prepared_unmemoized.store(c.prepared_unmemoized, Ordering::Relaxed);
        self.scheduler_rounds.store(c.scheduler_rounds, Ordering::Relaxed);
        self.scheduler_tasks.store(c.scheduler_tasks, Ordering::Relaxed);
        self.scheduler_peak_tasks.store(c.scheduler_peak_tasks, Ordering::Relaxed);
        self.scheduler_overadmissions.store(c.scheduler_overadmissions, Ordering::Relaxed);
        Ok(())
    }
}

fn export_value_key(key: ValueKey) -> crate::snapshot::ValueKeySnap {
    use crate::snapshot::ValueKeySnap;
    match key {
        ValueKey::Int(v) => ValueKeySnap::Int(v),
        ValueKey::Float(bits) => ValueKeySnap::Float(bits),
        ValueKey::Str(id) => ValueKeySnap::Str(id),
        ValueKey::Bool(b) => ValueKeySnap::Bool(b),
        ValueKey::Null => ValueKeySnap::Null,
    }
}

fn import_value_key(snap: crate::snapshot::ValueKeySnap) -> ValueKey {
    use crate::snapshot::ValueKeySnap;
    match snap {
        ValueKeySnap::Int(v) => ValueKey::Int(v),
        ValueKeySnap::Float(bits) => ValueKey::Float(bits),
        ValueKeySnap::Str(id) => ValueKey::Str(id),
        ValueKeySnap::Bool(b) => ValueKey::Bool(b),
        ValueKeySnap::Null => ValueKey::Null,
    }
}

/// Instantiate a prepared template, mapping template errors the same way
/// [`Database::validate_template`] does.
fn instantiate(
    handle: &PreparedHandle,
    bindings: &HashMap<u32, Value>,
) -> Result<Select, DbError> {
    handle
        .template()
        .instantiate(bindings)
        .map_err(|e| DbError::Unsupported(e.to_string()))
}

/// Deterministic 64-bit FNV-1a [`Hasher`] for shard routing. The std
/// `DefaultHasher` has an unspecified algorithm that may change between
/// Rust releases; shard routing must stay a pure function of the key so
/// memo placement — and therefore eviction behavior at tiny capacities —
/// is reproducible everywhere.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

fn shard_index<K: Hash>(key: &K) -> usize {
    let mut hasher = Fnv1a(Fnv1a::OFFSET_BASIS);
    key.hash(&mut hasher);
    (hasher.finish() as usize) & (SHARDS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkit::parse_template;

    fn tpch() -> Database {
        minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
    }

    fn select(sql: &str) -> sqlkit::Select {
        sqlkit::parse_select(sql).unwrap()
    }

    fn bindings(values: &[(u32, Value)]) -> HashMap<u32, Value> {
        values.iter().cloned().collect()
    }

    #[test]
    fn repeat_probes_hit_the_cache() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let q = select("SELECT COUNT(*) FROM nation");
        let first = oracle.query_cost(&q, CostType::PlanCost).unwrap();
        let second = oracle.query_cost(&q, CostType::PlanCost).unwrap();
        assert_eq!(first.to_bits(), second.to_bits());
        let stats = oracle.stats();
        assert_eq!(stats.logical_probes, 2);
        assert_eq!(stats.physical_evals, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn cost_types_do_not_share_entries() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let q = select("SELECT COUNT(*) FROM region");
        oracle.query_cost(&q, CostType::PlanCost).unwrap();
        oracle.query_cost(&q, CostType::Cardinality).unwrap();
        assert_eq!(oracle.stats().physical_evals, 2);
        assert_eq!(oracle.stats().cache_hits, 0);
    }

    #[test]
    fn execution_time_is_never_memoized() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let q = select("SELECT COUNT(*) FROM nation");
        oracle.query_cost(&q, CostType::ExecutionTimeMicros).unwrap();
        oracle.query_cost(&q, CostType::ExecutionTimeMicros).unwrap();
        let stats = oracle.stats();
        assert_eq!(stats.logical_probes, 2);
        assert_eq!(stats.physical_evals, 2);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn errors_are_cached_too() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let q = select("SELECT no_such_col FROM nation");
        assert!(oracle.query_cost(&q, CostType::Cardinality).is_err());
        assert!(oracle.query_cost(&q, CostType::Cardinality).is_err());
        let stats = oracle.stats();
        assert_eq!(stats.physical_evals, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn batch_dedupes_and_preserves_order() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 4);
        let sqls = [
            "SELECT COUNT(*) FROM nation",
            "SELECT COUNT(*) FROM region",
            "SELECT COUNT(*) FROM nation", // duplicate of probe 0
            "SELECT COUNT(*) FROM customer",
        ];
        let probes: Vec<(String, sqlkit::Select)> =
            sqls.iter().map(|s| (s.to_string(), select(s))).collect();
        let results = oracle.cost_batch(&probes, CostType::Cardinality);
        assert_eq!(results.len(), 4);
        assert_eq!(
            results[0].as_ref().unwrap().to_bits(),
            results[2].as_ref().unwrap().to_bits()
        );
        let stats = oracle.stats();
        assert_eq!(stats.logical_probes, 4);
        assert_eq!(stats.physical_evals, 3, "duplicate must be planned once");
        assert_eq!(stats.cache_hits, 1);

        // A second identical batch is all hits.
        oracle.cost_batch(&probes, CostType::Cardinality);
        let stats = oracle.stats();
        assert_eq!(stats.logical_probes, 8);
        assert_eq!(stats.physical_evals, 3);
        assert_eq!(stats.cache_hits, 5);
    }

    #[test]
    fn batch_results_and_stats_match_across_thread_counts() {
        let db = tpch();
        let probes: Vec<(String, sqlkit::Select)> = (0..40)
            .map(|i| {
                let sql = format!(
                    "SELECT COUNT(*) FROM lineitem WHERE lineitem.l_quantity > {}",
                    i % 13 // forces in-batch duplicates
                );
                let parsed = select(&sql);
                (sql, parsed)
            })
            .collect();
        let run = |threads: usize| {
            let oracle = CostOracle::new(&db, threads);
            let costs: Vec<u64> = oracle
                .cost_batch(&probes, CostType::Cardinality)
                .into_iter()
                .map(|r| r.unwrap().to_bits())
                .collect();
            (costs, oracle.stats())
        };
        let (serial, serial_stats) = run(1);
        let (parallel, parallel_stats) = run(4);
        assert_eq!(serial, parallel);
        assert_eq!(serial_stats, parallel_stats);
        assert_eq!(serial_stats.logical_probes, 40);
        assert_eq!(serial_stats.physical_evals, 13);
    }

    #[test]
    fn prepared_probe_matches_rendered_path() {
        let db = tpch();
        let template = parse_template(
            "SELECT lineitem.l_orderkey FROM lineitem WHERE lineitem.l_quantity > {p_1}",
        )
        .unwrap();
        let oracle = CostOracle::new(&db, 1);
        let handle = oracle.prepare(&template).unwrap();
        for value in [Value::Int(5), Value::Int(30), Value::Float(48.5)] {
            let binding = bindings(&[(1, value)]);
            for cost_type in
                [CostType::Cardinality, CostType::PlanCost, CostType::ActualCardinality]
            {
                let prepared = oracle.cost_prepared(&handle, &binding, cost_type).unwrap();
                let rendered = oracle
                    .query_cost(&template.instantiate(&binding).unwrap(), cost_type)
                    .unwrap();
                assert_eq!(prepared.to_bits(), rendered.to_bits(), "{cost_type:?}");
            }
        }
    }

    #[test]
    fn prepared_repeat_bindings_hit_the_binding_key_cache() {
        let db = tpch();
        let template = parse_template(
            "SELECT orders.o_orderkey FROM orders WHERE orders.o_totalprice > {p_1}",
        )
        .unwrap();
        let oracle = CostOracle::new(&db, 1);
        let handle = oracle.prepare(&template).unwrap();
        let b1 = bindings(&[(1, Value::Float(100.0))]);
        let b2 = bindings(&[(1, Value::Float(5000.0))]);
        oracle.cost_prepared(&handle, &b1, CostType::PlanCost).unwrap();
        oracle.cost_prepared(&handle, &b1, CostType::PlanCost).unwrap();
        oracle.cost_prepared(&handle, &b2, CostType::PlanCost).unwrap();
        let stats = oracle.stats();
        assert_eq!(stats.logical_probes, 3);
        assert_eq!(stats.physical_evals, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.prepared_hits, 1);
        assert_eq!(stats.prepared_misses, 2);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn re_preparing_a_template_reuses_its_memo_namespace() {
        // Idempotent prepare: profiling the same template twice (e.g. a
        // second pipeline round) keeps hitting the first round's cache.
        let db = tpch();
        let template = parse_template(
            "SELECT nation.n_name FROM nation WHERE nation.n_nationkey > {p_1}",
        )
        .unwrap();
        let oracle = CostOracle::new(&db, 1);
        let h1 = oracle.prepare(&template).unwrap();
        let h2 = oracle.prepare(&template).unwrap();
        assert_eq!(h1.id, h2.id);
        let b = bindings(&[(1, Value::Int(3))]);
        let c1 = oracle.cost_prepared(&h1, &b, CostType::Cardinality).unwrap();
        let c2 = oracle.cost_prepared(&h2, &b, CostType::Cardinality).unwrap();
        assert_eq!(c1.to_bits(), c2.to_bits());
        let stats = oracle.stats();
        assert_eq!(stats.prepared_misses, 1);
        assert_eq!(stats.prepared_hits, 1);
    }

    #[test]
    fn prepared_batch_matches_serial_and_thread_counts() {
        let db = tpch();
        let template = parse_template(
            "SELECT lineitem.l_orderkey FROM lineitem WHERE lineitem.l_quantity > {p_1}",
        )
        .unwrap();
        let batch: Vec<HashMap<u32, Value>> =
            (0..40).map(|i| bindings(&[(1, Value::Int(i % 13))])).collect();
        let run = |threads: usize| {
            let oracle = CostOracle::new(&db, threads);
            let handle = oracle.prepare(&template).unwrap();
            let costs: Vec<u64> = oracle
                .cost_prepared_batch(&handle, &batch, CostType::Cardinality)
                .into_iter()
                .map(|r| r.unwrap().to_bits())
                .collect();
            (costs, oracle.stats())
        };
        let (serial, serial_stats) = run(1);
        let (parallel, parallel_stats) = run(4);
        assert_eq!(serial, parallel);
        assert_eq!(serial_stats, parallel_stats);
        assert_eq!(serial_stats.logical_probes, 40);
        assert_eq!(serial_stats.physical_evals, 13);
        assert_eq!(serial_stats.prepared_misses, 13);
        assert_eq!(serial_stats.prepared_hits, 27);
    }

    #[test]
    fn disabled_prepared_path_falls_back_to_text_memo() {
        let db = tpch();
        let template = parse_template(
            "SELECT orders.o_orderkey FROM orders WHERE orders.o_totalprice > {p_1}",
        )
        .unwrap();
        let oracle = CostOracle::new(&db, 1).with_prepared(false);
        assert!(!oracle.prepared_enabled());
        let handle = oracle.prepare(&template).unwrap();
        let b = bindings(&[(1, Value::Float(700.0))]);
        let via_prepared_api = oracle.cost_prepared(&handle, &b, CostType::PlanCost).unwrap();
        let via_text = oracle
            .query_cost(&template.instantiate(&b).unwrap(), CostType::PlanCost)
            .unwrap();
        assert_eq!(via_prepared_api.to_bits(), via_text.to_bits());
        let stats = oracle.stats();
        // Second probe was a text-cache hit: same rendered statement.
        assert_eq!(stats.logical_probes, 2);
        assert_eq!(stats.physical_evals, 1);
        assert_eq!(stats.prepared_hits, 0);
        assert_eq!(stats.prepared_misses, 0);

        let batch: Vec<HashMap<u32, Value>> =
            (0..6).map(|i| bindings(&[(1, Value::Float(f64::from(i) * 100.0))])).collect();
        let results = oracle.cost_prepared_batch(&handle, &batch, CostType::PlanCost);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(oracle.stats().prepared_misses, 0);
    }

    #[test]
    fn bounded_cache_evicts_with_second_chance_and_counts_it() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1).with_cache_capacity(1);
        // Far more distinct statements than 16 shards × 1 entry can hold.
        for i in 0..64 {
            let q = select(&format!(
                "SELECT COUNT(*) FROM lineitem WHERE lineitem.l_quantity > {i}"
            ));
            oracle.query_cost(&q, CostType::Cardinality).unwrap();
        }
        let stats = oracle.stats();
        assert_eq!(stats.logical_probes, 64);
        // Every probe was distinct: evicted-or-resident must cover all.
        assert_eq!(stats.physical_evals, 64);
        assert!(stats.evictions > 0, "capacity 1 must evict: {stats:?}");
        let resident: usize = 64 - stats.evictions as usize;
        assert!(resident <= SHARDS, "at most one resident entry per shard");
    }

    /// Runs one batch per-probe and columnar on fresh oracles and asserts
    /// bit-identical results plus identical oracle accounting.
    fn assert_columnar_matches_per_probe(
        template_sql: &str,
        batch: &[HashMap<u32, Value>],
        cost_type: CostType,
        threads: usize,
    ) -> (Vec<Result<f64, DbError>>, OracleStats) {
        let db = tpch();
        let template = parse_template(template_sql).unwrap();
        let per_probe = {
            let oracle = CostOracle::new(&db, threads);
            let handle = oracle.prepare(&template).unwrap();
            let results = oracle.cost_prepared_batch(&handle, batch, cost_type);
            (results, oracle.stats())
        };
        let columnar = {
            let oracle = CostOracle::new(&db, threads);
            assert!(oracle.columnar_enabled());
            let handle = oracle.prepare(&template).unwrap();
            let mut scratch = ColumnarScratch::new();
            let results = oracle
                .cost_prepared_batch_columnar(&handle, batch, cost_type, &mut scratch)
                .to_vec();
            (results, oracle.stats())
        };
        assert_eq!(per_probe.0.len(), columnar.0.len());
        for (i, (a, b)) in per_probe.0.iter().zip(columnar.0.iter()).enumerate() {
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "probe {i} diverged ({cost_type:?}, {threads} threads)"
                ),
                (Err(x), Err(y)) => assert_eq!(format!("{x:?}"), format!("{y:?}")),
                _ => panic!("probe {i}: ok/err mismatch: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(
            per_probe.1, columnar.1,
            "oracle accounting diverged ({cost_type:?}, {threads} threads)"
        );
        columnar
    }

    #[test]
    fn columnar_batch_matches_per_probe_across_threads() {
        // 40 probes, 13 distinct bindings → in-batch duplicates that span
        // multiple memo shards.
        let batch: Vec<HashMap<u32, Value>> =
            (0..40).map(|i| bindings(&[(1, Value::Int(i % 13))])).collect();
        let sql = "SELECT lineitem.l_orderkey FROM lineitem WHERE lineitem.l_quantity > {p_1}";
        for cost_type in [CostType::Cardinality, CostType::PlanCost, CostType::ActualCardinality] {
            let mut baseline: Option<Vec<u64>> = None;
            for threads in [1, 2, 8] {
                let (results, stats) =
                    assert_columnar_matches_per_probe(sql, &batch, cost_type, threads);
                assert_eq!(stats.logical_probes, 40);
                assert_eq!(stats.physical_evals, 13);
                assert_eq!(stats.prepared_misses, 13);
                assert_eq!(stats.prepared_hits, 27);
                let bits: Vec<u64> =
                    results.iter().map(|r| r.as_ref().unwrap().to_bits()).collect();
                match &baseline {
                    None => baseline = Some(bits),
                    Some(expected) => assert_eq!(expected, &bits, "{cost_type:?}"),
                }
            }
        }
    }

    #[test]
    fn columnar_warm_batch_is_all_hits() {
        let db = tpch();
        let template = parse_template(
            "SELECT orders.o_orderkey FROM orders WHERE orders.o_totalprice > {p_1}",
        )
        .unwrap();
        let oracle = CostOracle::new(&db, 2);
        let handle = oracle.prepare(&template).unwrap();
        let batch: Vec<HashMap<u32, Value>> =
            (0..16).map(|i| bindings(&[(1, Value::Float(f64::from(i) * 250.0))])).collect();
        let mut scratch = ColumnarScratch::new();
        let cold: Vec<u64> = oracle
            .cost_prepared_batch_columnar(&handle, &batch, CostType::PlanCost, &mut scratch)
            .iter()
            .map(|r| r.as_ref().unwrap().to_bits())
            .collect();
        let evals_after_cold = oracle.stats().physical_evals;
        let warm: Vec<u64> = oracle
            .cost_prepared_batch_columnar(&handle, &batch, CostType::PlanCost, &mut scratch)
            .iter()
            .map(|r| r.as_ref().unwrap().to_bits())
            .collect();
        assert_eq!(cold, warm);
        let stats = oracle.stats();
        assert_eq!(stats.physical_evals, evals_after_cold, "warm batch must not recost");
        assert_eq!(stats.prepared_hits, 16);
    }

    #[test]
    fn columnar_memoizes_unbound_errors_identically() {
        let batch = vec![
            bindings(&[(1, Value::Int(10))]),
            bindings(&[]), // missing p_1
            bindings(&[]), // duplicate of the error probe
            bindings(&[(1, Value::Int(10))]),
        ];
        let sql = "SELECT lineitem.l_orderkey FROM lineitem WHERE lineitem.l_quantity > {p_1}";
        for threads in [1, 4] {
            let (results, stats) = assert_columnar_matches_per_probe(
                sql,
                &batch,
                CostType::Cardinality,
                threads,
            );
            assert!(matches!(results[1], Err(DbError::UnboundPlaceholder(1))));
            assert!(results[0].is_ok() && results[3].is_ok());
            // The error entry is memoized like any result: 4 logical, 2
            // distinct (ok + err), 2 duplicate hits.
            assert_eq!(stats.prepared_misses, 2);
            assert_eq!(stats.prepared_hits, 2);
        }
    }

    #[test]
    fn columnar_heap_keys_match_per_probe() {
        // Five placeholders exceed the inline binding-key capacity, forcing
        // the heap key representation through the same shard routing.
        let sql = "SELECT lineitem.l_orderkey FROM lineitem \
                   WHERE lineitem.l_quantity > {p_1} AND lineitem.l_extendedprice > {p_2} \
                   AND lineitem.l_discount > {p_3} AND lineitem.l_suppkey > {p_4} \
                   AND lineitem.l_orderkey > {p_5}";
        let batch: Vec<HashMap<u32, Value>> = (0..12)
            .map(|i| {
                bindings(&[
                    (1, Value::Int(i % 5)),
                    (2, Value::Float(i as f64 * 10.0)),
                    (3, Value::Float(0.02)),
                    (4, Value::Int(i % 4)),
                    (5, Value::Int(i % 3)),
                ])
            })
            .collect();
        for threads in [1, 4] {
            assert_columnar_matches_per_probe(sql, &batch, CostType::PlanCost, threads);
        }
    }

    #[test]
    fn columnar_disabled_delegates_to_per_probe_path() {
        let db = tpch();
        let template = parse_template(
            "SELECT orders.o_orderkey FROM orders WHERE orders.o_totalprice > {p_1}",
        )
        .unwrap();
        let batch: Vec<HashMap<u32, Value>> =
            (0..8).map(|i| bindings(&[(1, Value::Float(f64::from(i) * 300.0))])).collect();
        let via_batch = {
            let oracle = CostOracle::new(&db, 1);
            let handle = oracle.prepare(&template).unwrap();
            let results = oracle.cost_prepared_batch(&handle, &batch, CostType::Cardinality);
            (results, oracle.stats())
        };
        let via_disabled_columnar = {
            let oracle = CostOracle::new(&db, 1).with_columnar(false);
            assert!(!oracle.columnar_enabled());
            let handle = oracle.prepare(&template).unwrap();
            let mut scratch = ColumnarScratch::new();
            let results = oracle
                .cost_prepared_batch_columnar(
                    &handle,
                    &batch,
                    CostType::Cardinality,
                    &mut scratch,
                )
                .to_vec();
            (results, oracle.stats())
        };
        let bits = |rs: &[Result<f64, DbError>]| -> Vec<u64> {
            rs.iter().map(|r| r.as_ref().unwrap().to_bits()).collect()
        };
        assert_eq!(bits(&via_batch.0), bits(&via_disabled_columnar.0));
        assert_eq!(via_batch.1, via_disabled_columnar.1);
    }

    #[test]
    fn columnar_eviction_accounting_matches_under_tiny_capacity() {
        // Capacity 2 with 64 distinct bindings forces second-chance
        // eviction; the columnar path must evict identically because
        // per-shard lookup and insert order match the per-probe path.
        let db = tpch();
        let template = parse_template(
            "SELECT nation.n_name FROM nation WHERE nation.n_nationkey > {p_1}",
        )
        .unwrap();
        let batch: Vec<HashMap<u32, Value>> =
            (0..64).map(|i| bindings(&[(1, Value::Int(i))])).collect();
        let run = |columnar: bool| {
            let oracle = CostOracle::new(&db, 1).with_cache_capacity(2).with_columnar(columnar);
            let handle = oracle.prepare(&template).unwrap();
            let mut scratch = ColumnarScratch::new();
            let results: Vec<u64> = oracle
                .cost_prepared_batch_columnar(&handle, &batch, CostType::Cardinality, &mut scratch)
                .iter()
                .map(|r| r.as_ref().unwrap().to_bits())
                .collect();
            (results, oracle.stats())
        };
        let (per_probe, per_probe_stats) = run(false);
        let (columnar, columnar_stats) = run(true);
        assert_eq!(per_probe, columnar);
        assert_eq!(per_probe_stats, columnar_stats);
        assert!(columnar_stats.evictions > 0, "capacity 2 must evict: {columnar_stats:?}");
    }

    #[test]
    fn eviction_keeps_recent_entries_reachable() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1).with_cache_capacity(2);
        let template = parse_template(
            "SELECT nation.n_name FROM nation WHERE nation.n_nationkey > {p_1}",
        )
        .unwrap();
        let handle = oracle.prepare(&template).unwrap();
        for i in 0..32 {
            let b = bindings(&[(1, Value::Int(i))]);
            oracle.cost_prepared(&handle, &b, CostType::Cardinality).unwrap();
        }
        // The most recent binding is still cached (fresh entries are
        // admitted referenced, so the clock cannot evict them instantly).
        let before = oracle.stats();
        let b = bindings(&[(1, Value::Int(31))]);
        oracle.cost_prepared(&handle, &b, CostType::Cardinality).unwrap();
        let after = oracle.stats();
        assert_eq!(after.prepared_misses, before.prepared_misses);
        assert_eq!(after.prepared_hits, before.prepared_hits + 1);
    }

    #[test]
    fn state_round_trip_reproduces_stats_and_future_behavior() {
        // Warm an oracle through both memo paths (text + prepared, with
        // string-interned bindings, a memoized error, and tiny-capacity
        // evictions), export, restore into a fresh oracle, and require
        // (a) identical derived stats and (b) an identical probe future.
        let db = tpch();
        let template = parse_template(
            "SELECT nation.n_name FROM nation WHERE nation.n_name > {p_1}",
        )
        .unwrap();
        let warm = |oracle: &CostOracle| -> PreparedHandle {
            let handle = oracle.prepare(&template).unwrap();
            for i in 0..24 {
                let b = bindings(&[(1, Value::Str(format!("N{:02}", i % 9)))]);
                oracle.cost_prepared(&handle, &b, CostType::Cardinality).unwrap();
            }
            let q = select("SELECT COUNT(*) FROM region");
            oracle.query_cost(&q, CostType::PlanCost).unwrap();
            let bad = select("SELECT no_such_col FROM nation");
            assert!(oracle.query_cost(&bad, CostType::Cardinality).is_err());
            oracle.note_scheduler_round(3, 1);
            handle
        };
        let probe_future = |oracle: &CostOracle, handle: &PreparedHandle| {
            let mut costs = Vec::new();
            for i in 0..40 {
                let b = bindings(&[(1, Value::Str(format!("N{:02}", i % 13)))]);
                costs.push(
                    oracle.cost_prepared(handle, &b, CostType::Cardinality).unwrap().to_bits(),
                );
            }
            (costs, oracle.stats())
        };

        let original = CostOracle::new(&db, 1).with_cache_capacity(2);
        let handle = warm(&original);
        let exported = original.export_state();

        let restored = CostOracle::new(&db, 1);
        restored.restore_state(&exported).unwrap();
        assert_eq!(restored.stats(), original.stats(), "restored stats diverge");
        // The registry round-trips ids, so re-preparing yields the same
        // handle id and therefore the same memo namespace.
        let restored_handle = restored.prepare(&template).unwrap();
        assert_eq!(restored_handle.id, handle.id);
        // Capture is lossless: a second export is structurally identical.
        assert_eq!(restored.export_state(), exported);

        // Both oracles must now agree on every future probe, hit/miss
        // decision, and eviction (capacity was restored too).
        assert_eq!(probe_future(&original, &handle), probe_future(&restored, &restored_handle));
    }

    #[test]
    fn restore_rejects_mismatched_shard_counts() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let mut state = oracle.export_state();
        state.text_shards.pop();
        let err = CostOracle::new(&db, 1).restore_state(&state).unwrap_err();
        assert!(err.contains("memo shards"), "{err}");
    }
}
