//! Shared cost oracle: memoized, thread-parallel DBMS costing.
//!
//! Every phase of the pipeline — profiling (§5.1), refinement (§5.2), the
//! BO predicate search (§5.3), and the baselines — ultimately asks the
//! DBMS the same question: *what does this statement cost?* The
//! [`CostOracle`] centralizes that question behind two optimizations:
//!
//! * **Memoization.** Results are cached in a sharded, mutex-guarded map
//!   keyed by `(cost type, canonical SQL text)`. Different unit points
//!   frequently decode to the same integer predicate values (and the
//!   baselines revisit points constantly), so repeat probes skip planning
//!   entirely. [`CostType::ExecutionTimeMicros`] is *never* memoized —
//!   wall-clock timings are not a pure function of the SQL text.
//! * **Batch parallelism.** [`CostOracle::cost_batch`] evaluates a slice
//!   of probes on a `std::thread::scope` worker pool. A serial pre-pass
//!   resolves cache hits and dedupes the misses, so each distinct
//!   statement is planned once per batch and the hit/eval accounting is
//!   the same at any thread count; results are merged in submission
//!   order, making the batch bit-identical to a serial loop.
//!
//! **Probe accounting.** The oracle distinguishes *logical probes* (what
//! the algorithms asked for — the paper's evaluation-budget currency,
//! counted even on cache hits) from *physical evaluations* (statements
//! actually planned or executed). Physical counts are derived from the
//! number of distinct cache entries plus un-memoized probes, so they are
//! deterministic even when concurrent workers race to fill the same
//! entry (the duplicated plan work is wasted, not counted).

use crate::cost::{query_cost, CostType};
use bayesopt::parallel::parallel_map;
use minidb::{Database, DbError};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shard count for the memo cache (reduces lock contention; must be a
/// power of two).
const SHARDS: usize = 16;

/// Snapshot of the oracle's probe counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Cost questions asked by the algorithms (cache hits included).
    pub logical_probes: u64,
    /// Statements actually planned/executed: distinct memoized statements
    /// plus every non-memoizable (execution-time) probe.
    pub physical_evals: u64,
    /// Probes answered from the memo cache: `logical - physical`.
    pub cache_hits: u64,
}

/// One shard of the memo cache: rendered statement + cost type → result.
type Shard = HashMap<(CostType, String), Result<f64, DbError>>;

/// Memoized, parallel cost oracle over one database.
pub struct CostOracle<'db> {
    db: &'db Database,
    threads: usize,
    shards: Vec<Mutex<Shard>>,
    logical: AtomicU64,
    /// Execution-time probes (bypass the cache entirely).
    unmemoized: AtomicU64,
}

impl<'db> CostOracle<'db> {
    /// New oracle with an explicit worker-thread count (`0` = all
    /// available cores).
    pub fn new(db: &'db Database, threads: usize) -> CostOracle<'db> {
        CostOracle {
            db,
            threads: bayesopt::parallel::resolve_threads(threads),
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            logical: AtomicU64::new(0),
            unmemoized: AtomicU64::new(0),
        }
    }

    /// The database this oracle costs against.
    pub fn db(&self) -> &'db Database {
        self.db
    }

    /// Resolved worker-thread count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cost one statement, rendering its SQL internally. Counts one
    /// logical probe; memoized unless `cost_type` requires execution.
    pub fn query_cost(
        &self,
        select: &sqlkit::Select,
        cost_type: CostType,
    ) -> Result<f64, DbError> {
        self.cost_rendered(&select.to_string(), select, cost_type)
    }

    /// Cost one statement whose SQL text the caller already rendered
    /// (avoids re-rendering when the text is needed for acceptance
    /// bookkeeping anyway).
    pub fn cost_rendered(
        &self,
        sql: &str,
        select: &sqlkit::Select,
        cost_type: CostType,
    ) -> Result<f64, DbError> {
        self.logical.fetch_add(1, Ordering::Relaxed);
        // ActualCardinality requires execution but is still a pure
        // function of the statement, so it stays memoizable; only
        // wall-clock timings bypass the cache.
        if cost_type == CostType::ExecutionTimeMicros {
            self.unmemoized.fetch_add(1, Ordering::Relaxed);
            return query_cost(self.db, select, cost_type);
        }
        let shard = &self.shards[shard_of(cost_type, sql)];
        if let Some(cached) = shard.lock().get(&(cost_type, sql.to_string())) {
            return cached.clone();
        }
        let result = query_cost(self.db, select, cost_type);
        shard.lock().insert((cost_type, sql.to_string()), result.clone());
        result
    }

    /// Cost a batch of `(sql, statement)` probes, in submission order.
    ///
    /// Counts one logical probe per item. Cache misses are deduplicated
    /// serially and then planned on up to [`CostOracle::threads`] scoped
    /// workers, so the result vector — and the hit/eval accounting — is
    /// identical to costing the batch serially.
    pub fn cost_batch(
        &self,
        probes: &[(String, sqlkit::Select)],
        cost_type: CostType,
    ) -> Vec<Result<f64, DbError>> {
        self.logical.fetch_add(probes.len() as u64, Ordering::Relaxed);
        if cost_type == CostType::ExecutionTimeMicros {
            // Not memoizable; still parallel, still order-preserving.
            self.unmemoized.fetch_add(probes.len() as u64, Ordering::Relaxed);
            return parallel_map(self.threads, probes, |_, (_, select)| {
                query_cost(self.db, select, cost_type)
            });
        }

        // Serial pre-pass: resolve cache hits, dedupe misses in
        // first-appearance order.
        let mut results: Vec<Option<Result<f64, DbError>>> = vec![None; probes.len()];
        let mut miss_slots: HashMap<&str, usize> = HashMap::new();
        let mut misses: Vec<usize> = Vec::new(); // probe index of first appearance
        let mut resolve_later: Vec<(usize, usize)> = Vec::new(); // (probe, miss slot)
        for (i, (sql, _)) in probes.iter().enumerate() {
            let shard = &self.shards[shard_of(cost_type, sql)];
            if let Some(cached) = shard.lock().get(&(cost_type, sql.as_str().to_string())) {
                results[i] = Some(cached.clone());
            } else if let Some(&slot) = miss_slots.get(sql.as_str()) {
                resolve_later.push((i, slot));
            } else {
                let slot = misses.len();
                miss_slots.insert(sql.as_str(), slot);
                misses.push(i);
                resolve_later.push((i, slot));
            }
        }

        // Plan each distinct miss exactly once, in parallel.
        let computed = parallel_map(self.threads, &misses, |_, &probe_idx| {
            query_cost(self.db, &probes[probe_idx].1, cost_type)
        });
        for (slot, &probe_idx) in misses.iter().enumerate() {
            let sql = probes[probe_idx].0.as_str();
            self.shards[shard_of(cost_type, sql)]
                .lock()
                .insert((cost_type, sql.to_string()), computed[slot].clone());
        }
        for (probe_idx, slot) in resolve_later {
            results[probe_idx] = Some(computed[slot].clone());
        }
        results.into_iter().map(|r| r.expect("every probe resolved")).collect()
    }

    /// Current probe counters. Derived from deterministic quantities
    /// (logical counter, cache size, un-memoized counter), so identical
    /// runs report identical stats at any thread count.
    pub fn stats(&self) -> OracleStats {
        let distinct: u64 = self.shards.iter().map(|s| s.lock().len() as u64).sum();
        let logical = self.logical.load(Ordering::Relaxed);
        let physical = distinct + self.unmemoized.load(Ordering::Relaxed);
        OracleStats {
            logical_probes: logical,
            physical_evals: physical,
            cache_hits: logical.saturating_sub(physical),
        }
    }
}

fn shard_of(cost_type: CostType, sql: &str) -> usize {
    let mut hasher = DefaultHasher::new();
    cost_type.hash(&mut hasher);
    sql.hash(&mut hasher);
    (hasher.finish() as usize) & (SHARDS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tpch() -> Database {
        minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
    }

    fn select(sql: &str) -> sqlkit::Select {
        sqlkit::parse_select(sql).unwrap()
    }

    #[test]
    fn repeat_probes_hit_the_cache() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let q = select("SELECT COUNT(*) FROM nation");
        let first = oracle.query_cost(&q, CostType::PlanCost).unwrap();
        let second = oracle.query_cost(&q, CostType::PlanCost).unwrap();
        assert_eq!(first.to_bits(), second.to_bits());
        let stats = oracle.stats();
        assert_eq!(stats.logical_probes, 2);
        assert_eq!(stats.physical_evals, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn cost_types_do_not_share_entries() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let q = select("SELECT COUNT(*) FROM region");
        oracle.query_cost(&q, CostType::PlanCost).unwrap();
        oracle.query_cost(&q, CostType::Cardinality).unwrap();
        assert_eq!(oracle.stats().physical_evals, 2);
        assert_eq!(oracle.stats().cache_hits, 0);
    }

    #[test]
    fn execution_time_is_never_memoized() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let q = select("SELECT COUNT(*) FROM nation");
        oracle.query_cost(&q, CostType::ExecutionTimeMicros).unwrap();
        oracle.query_cost(&q, CostType::ExecutionTimeMicros).unwrap();
        let stats = oracle.stats();
        assert_eq!(stats.logical_probes, 2);
        assert_eq!(stats.physical_evals, 2);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn errors_are_cached_too() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let q = select("SELECT no_such_col FROM nation");
        assert!(oracle.query_cost(&q, CostType::Cardinality).is_err());
        assert!(oracle.query_cost(&q, CostType::Cardinality).is_err());
        let stats = oracle.stats();
        assert_eq!(stats.physical_evals, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn batch_dedupes_and_preserves_order() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 4);
        let sqls = [
            "SELECT COUNT(*) FROM nation",
            "SELECT COUNT(*) FROM region",
            "SELECT COUNT(*) FROM nation", // duplicate of probe 0
            "SELECT COUNT(*) FROM customer",
        ];
        let probes: Vec<(String, sqlkit::Select)> =
            sqls.iter().map(|s| (s.to_string(), select(s))).collect();
        let results = oracle.cost_batch(&probes, CostType::Cardinality);
        assert_eq!(results.len(), 4);
        assert_eq!(
            results[0].as_ref().unwrap().to_bits(),
            results[2].as_ref().unwrap().to_bits()
        );
        let stats = oracle.stats();
        assert_eq!(stats.logical_probes, 4);
        assert_eq!(stats.physical_evals, 3, "duplicate must be planned once");
        assert_eq!(stats.cache_hits, 1);

        // A second identical batch is all hits.
        oracle.cost_batch(&probes, CostType::Cardinality);
        let stats = oracle.stats();
        assert_eq!(stats.logical_probes, 8);
        assert_eq!(stats.physical_evals, 3);
        assert_eq!(stats.cache_hits, 5);
    }

    #[test]
    fn batch_results_and_stats_match_across_thread_counts() {
        let db = tpch();
        let probes: Vec<(String, sqlkit::Select)> = (0..40)
            .map(|i| {
                let sql = format!(
                    "SELECT COUNT(*) FROM lineitem WHERE lineitem.l_quantity > {}",
                    i % 13 // forces in-batch duplicates
                );
                let parsed = select(&sql);
                (sql, parsed)
            })
            .collect();
        let run = |threads: usize| {
            let oracle = CostOracle::new(&db, threads);
            let costs: Vec<u64> = oracle
                .cost_batch(&probes, CostType::Cardinality)
                .into_iter()
                .map(|r| r.unwrap().to_bits())
                .collect();
            (costs, oracle.stats())
        };
        let (serial, serial_stats) = run(1);
        let (parallel, parallel_stats) = run(4);
        assert_eq!(serial, parallel);
        assert_eq!(serial_stats, parallel_stats);
        assert_eq!(serial_stats.logical_probes, 40);
        assert_eq!(serial_stats.physical_evals, 13);
    }
}
