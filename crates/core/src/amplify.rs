//! Post-convergence workload amplification (ROADMAP item 1).
//!
//! The BO pipeline tops out at the paper's 1–2k queries per run because
//! every emitted query is minted by an oracle probe. Amplification turns
//! a converged Algorithm 3 state into millions of cost-matched queries at
//! near-zero oracle cost: for each (interval, template) pair the search
//! converged on, a [`FittedGenerator`] is fitted from the accepted probes
//! (anchor points inside the interval plus their harvested bounding box
//! in the unit hypercube), candidate bindings stream through
//! [`BindingBatch`]/[`recost_batch`] in large mini-batches, and only
//! candidates whose recost lands in the claimed interval are emitted.
//! Costing goes straight through the prepared plan — the oracle memo is
//! never consulted, so `physical_evals` stays flat and the per-accepted
//! oracle miss count is 0.
//!
//! ### Determinism model: batch = unit of determinism, shard = speculation
//!
//! Candidate batch `b` of a pair draws from `StdRng(split_seed(pair_seed,
//! b))`, so its content is a pure function of `(interval, template, b)`.
//! Shards only decide how many batches are costed *speculatively* in one
//! wave: the flush barrier consumes batches in canonical batch order
//! until the pair's quota fills and discards the rest unseen, without
//! accounting them. Output bytes, histograms, and every counter are
//! therefore bit-identical at any `--threads N` *and* any
//! `--amplify-shards K`.
//!
//! ### Bounded memory
//!
//! Accepted queries are rendered into per-shard scratch strings
//! ([`Lane`]) and handed to a [`StreamingSqlWriter`] at each barrier;
//! the interval histogram folds incrementally in a
//! [`DistributionAccumulator`]. Nothing proportional to the workload size
//! is ever held in memory — `examples/alloc_probe.rs --amplify`
//! demonstrates a 1M-query emission at 0.000 allocs/query warm.
//!
//! [`recost_batch`]: minidb::PreparedTemplate::recost_batch
//! [`StreamingSqlWriter`]: workload::stream::StreamingSqlWriter
//! [`DistributionAccumulator`]: workload::stream::DistributionAccumulator

use crate::cost::CostType;
use crate::oracle::{CostOracle, PreparedHandle};
use crate::profiler::ProfiledTemplate;
use crate::sampler::PlaceholderSpace;
use bayesopt::parallel::{parallel_map, split_seed};
use minidb::{BindingBatch, Database, DbError, ExecScratch, RecostScratch};
use crate::lockorder::{self, OrderedMutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlkit::Template;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::PathBuf;
use workload::stream::{scaled_quotas, DistributionAccumulator, StreamingSqlWriter};
use workload::{wasserstein_distance, CostIntervals, TargetDistribution};

/// Default candidates per mini-batch (one `recost_batch` call).
pub const DEFAULT_BATCH: usize = 1024;
/// Give-up bound: a pair stops after `quota × CANDIDATE_FACTOR` candidates
/// even if its quota is unfilled (the remainder is reported as shortfall).
const CANDIDATE_FACTOR: u64 = 64;
/// A pair always gets at least this many batches before giving up.
const MIN_BATCH_ATTEMPTS: u64 = 2;
/// Anchor points kept per fitted generator.
const MAX_ANCHORS: usize = 128;
/// Fractional widening of the harvested per-dimension box.
const BOX_WIDEN: f64 = 0.05;
/// Minimum absolute widening (unit-hypercube coordinates).
const MIN_BOX_MARGIN: f64 = 0.01;
/// Probability of perturbing an anchor vs sampling the box uniformly —
/// the same exploit/explore split the BO harvest phase uses.
const ANCHOR_FRACTION: f64 = 0.75;
/// Anchor jitter, as a fraction of the box span per dimension.
const PERTURB: f64 = 0.12;

/// Amplification stage configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AmplifyConfig {
    /// Total queries to emit (0 disables the stage).
    pub n: u64,
    /// Emission shards per wave; 0 means "thread count". Pure speculation
    /// width — never changes output.
    pub shards: usize,
    /// Candidates per mini-batch; 0 means [`DEFAULT_BATCH`].
    pub batch: usize,
    /// Output path; `None` streams to a sink (stats only).
    pub out: Option<PathBuf>,
}

/// Per-interval amplification accounting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IntervalAmplifyStats {
    /// Interval index.
    pub interval: usize,
    /// Largest-remainder share of the requested total.
    pub quota: u64,
    /// Queries emitted into this interval.
    pub emitted: u64,
    /// Candidates costed for this interval (consumed batches only).
    pub candidates: u64,
    /// (interval, template) pairs serving this interval.
    pub pairs: u64,
}

impl IntervalAmplifyStats {
    /// Accepted fraction of costed candidates.
    pub fn accept_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.emitted as f64 / self.candidates as f64
        }
    }
}

/// Amplification result accounting, attached to the generation report and
/// the manifest. Everything here is bit-identical at any thread or shard
/// count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AmplifyStats {
    /// Queries requested (`--amplify N`).
    pub requested: u64,
    /// Queries emitted.
    pub emitted: u64,
    /// Candidates costed (consumed batches × batch size).
    pub candidates: u64,
    /// Mini-batches consumed (speculative discards not included).
    pub batches: u64,
    /// (interval, template) pairs that served quota.
    pub pairs: u64,
    /// Requested minus emitted (give-ups + unservable intervals).
    pub shortfall: u64,
    /// Intervals with quota but no converged (template, probe) support.
    pub unserved_intervals: Vec<usize>,
    /// Emitted cost histogram over the target grid.
    pub histogram: Vec<f64>,
    /// Per-interval breakdown (quota, emitted, accept rate).
    pub per_interval: Vec<IntervalAmplifyStats>,
    /// W₁ distance from the target (scaled to the requested total) to the
    /// emitted histogram.
    pub wasserstein: f64,
    /// Oracle physical evaluations charged during amplification. The
    /// engine costs through the prepared plan directly, so this is 0 —
    /// near-zero oracle misses per accepted query is the whole point.
    pub oracle_misses: u64,
    /// Retained for output-format compatibility; always `false` now that
    /// every cost type amplifies (execution-based metrics replay through
    /// the vectorized execution plan instead of the recost skeleton).
    pub unsupported_cost_type: bool,
}

impl AmplifyStats {
    /// Accepted fraction of costed candidates.
    pub fn accept_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.emitted as f64 / self.candidates as f64
        }
    }

    /// Oracle misses per accepted query (the paper-scale efficiency
    /// claim: ≪ 1).
    pub fn misses_per_accept(&self) -> f64 {
        if self.emitted == 0 {
            0.0
        } else {
            self.oracle_misses as f64 / self.emitted as f64
        }
    }
}

/// Cheap binding generator fitted from a pair's conforming probes: the
/// accepted unit points become anchors, and their per-dimension bounding
/// box (slightly widened, clamped to the unit cube) bounds exploration.
/// Draws perturb an anchor with probability [`ANCHOR_FRACTION`] and
/// sample the box uniformly otherwise — the same exploit/explore split
/// the BO harvest phase uses, minus the optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedGenerator {
    anchors: Vec<Vec<f64>>,
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl FittedGenerator {
    /// Fit from the unit points of conforming probes. Returns `None` when
    /// no probe conformed (the pair has no support to amplify from).
    pub fn fit<'e>(
        arity: usize,
        conforming: impl Iterator<Item = &'e [f64]>,
    ) -> Option<FittedGenerator> {
        let mut anchors: Vec<Vec<f64>> = Vec::new();
        let mut lo = vec![f64::INFINITY; arity];
        let mut hi = vec![f64::NEG_INFINITY; arity];
        let mut seen = 0usize;
        for point in conforming {
            debug_assert_eq!(point.len(), arity);
            seen += 1;
            for (k, &u) in point.iter().enumerate() {
                lo[k] = lo[k].min(u);
                hi[k] = hi[k].max(u);
            }
            if anchors.len() < MAX_ANCHORS {
                anchors.push(point.to_vec());
            }
        }
        if seen == 0 {
            return None;
        }
        for k in 0..arity {
            let margin = ((hi[k] - lo[k]) * BOX_WIDEN).max(MIN_BOX_MARGIN);
            lo[k] = (lo[k] - margin).max(0.0);
            hi[k] = (hi[k] + margin).min(1.0);
        }
        Some(FittedGenerator { anchors, lo, hi })
    }

    /// Dimensionality of the fitted space.
    pub fn arity(&self) -> usize {
        self.lo.len()
    }

    /// Draw one candidate unit point into a reusable buffer. Pure
    /// function of the RNG state — no allocation once `out` has capacity.
    pub fn draw(&self, rng: &mut StdRng, out: &mut Vec<f64>) {
        out.clear();
        if self.lo.is_empty() {
            // Ground template: the single empty point.
            return;
        }
        if rng.gen_bool(ANCHOR_FRACTION) {
            let anchor = &self.anchors[rng.gen_range(0..self.anchors.len())];
            for ((&a, &lo), &hi) in anchor.iter().zip(&self.lo).zip(&self.hi) {
                let jitter = (rng.gen::<f64>() - 0.5) * (hi - lo) * PERTURB;
                out.push((a + jitter).clamp(lo, hi));
            }
        } else {
            for (&lo, &hi) in self.lo.iter().zip(&self.hi) {
                out.push(lo + rng.gen::<f64>() * (hi - lo));
            }
        }
    }

    /// Per-dimension box bounds (unit-hypercube coordinates).
    pub fn bounds(&self) -> (&[f64], &[f64]) {
        (&self.lo, &self.hi)
    }
}

/// Template SQL split at its `{p_i}` placeholders, so an accepted row
/// renders by splicing `Value` text between fixed segments instead of
/// cloning and printing an AST. Placeholders and literals are both
/// printer primaries (never parenthesized), so the splice is bit-identical
/// to `instantiate(..).to_string()` — property-tested in
/// `tests/tests/amplify_equivalence.rs`. Assumes `{p_i}` tokens appear
/// only as placeholders, which holds for AST-printed templates.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedSkeleton {
    /// `segments.len() == slots.len() + 1`; slot `i` splices between
    /// segments `i` and `i + 1`.
    segments: Vec<String>,
    slots: Vec<u32>,
}

impl RenderedSkeleton {
    /// Split a template's printed SQL at its placeholder tokens.
    pub fn new(template: &Template) -> RenderedSkeleton {
        let text = template.sql();
        let mut segments = Vec::new();
        let mut slots = Vec::new();
        let mut current = String::new();
        let mut rest = text.as_str();
        while !rest.is_empty() {
            if let Some(tail) = rest.strip_prefix("{p_") {
                if let Some(close) = tail.find('}') {
                    if let Ok(id) = tail[..close].parse::<u32>() {
                        segments.push(std::mem::take(&mut current));
                        slots.push(id);
                        rest = &tail[close + 1..];
                        continue;
                    }
                }
            }
            let ch = rest.chars().next().expect("non-empty remainder");
            current.push(ch);
            rest = &rest[ch.len_utf8()..];
        }
        segments.push(current);
        RenderedSkeleton { segments, slots }
    }

    /// Append row `row` of `batch`, rendered, to `out`. Every slot id
    /// must have a batch column (guaranteed when the batch was built over
    /// the template's own placeholders).
    pub fn render_row(&self, batch: &BindingBatch, row: usize, out: &mut String) {
        for (i, segment) in self.segments.iter().enumerate() {
            out.push_str(segment);
            if let Some(&id) = self.slots.get(i) {
                let value = batch
                    .value_of(id, row)
                    .expect("template placeholder has a batch column");
                let _ = write!(out, "{value}");
            }
        }
    }

    /// Placeholder ids in splice order (repeats included).
    pub fn slots(&self) -> &[u32] {
        &self.slots
    }
}

/// Which per-row value of the batched replay a candidate is accepted on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AcceptMetric {
    /// Optimizer-estimated rows (`recost_batch`).
    EstimatedRows,
    /// Optimizer-estimated plan cost (`recost_batch`).
    EstimatedCost,
    /// Executed output cardinality (`execute_batch`).
    ExecutedRows,
    /// Executed work-unit time in microseconds (`execute_batch`).
    ExecutedMicros,
}

/// Read-only emission context for one (interval, template) pair.
pub struct PairContext<'a> {
    interval: usize,
    intervals: CostIntervals,
    /// Which replayed value acceptance filters on.
    metric: AcceptMetric,
    space: &'a PlaceholderSpace,
    ids: Vec<u32>,
    skeleton: RenderedSkeleton,
    handle: PreparedHandle,
    generator: FittedGenerator,
}

impl<'a> PairContext<'a> {
    /// Build the context, fitting the generator from `profiled`'s probes
    /// that landed in `interval`. Returns `None` when no probe conformed.
    pub fn new(
        profiled: &'a ProfiledTemplate,
        handle: PreparedHandle,
        cost_type: CostType,
        intervals: CostIntervals,
        interval: usize,
    ) -> Option<PairContext<'a>> {
        let metric = match cost_type {
            CostType::Cardinality => AcceptMetric::EstimatedRows,
            CostType::PlanCost => AcceptMetric::EstimatedCost,
            CostType::ActualCardinality => AcceptMetric::ExecutedRows,
            CostType::ExecutionTimeMicros => AcceptMetric::ExecutedMicros,
        };
        let generator = FittedGenerator::fit(
            profiled.space.arity(),
            profiled
                .evaluations
                .iter()
                .filter(|e| intervals.interval_of(e.value) == Some(interval))
                .map(|e| e.point.as_slice()),
        )?;
        Some(PairContext {
            interval,
            intervals,
            metric,
            space: &profiled.space,
            ids: profiled.template.placeholders(),
            skeleton: RenderedSkeleton::new(&profiled.template),
            handle,
            generator,
        })
    }

    /// The claimed interval index.
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// The fitted binding generator.
    pub fn generator(&self) -> &FittedGenerator {
        &self.generator
    }
}

/// One emission shard's reusable scratch: candidate point and binding
/// buffers, the columnar batch, the recost and execution arenas, and the
/// rendered-record string. Warm batches allocate nothing (string
/// dimensions excepted — they clone the chosen MCV).
pub struct Lane {
    point: Vec<f64>,
    row: Vec<(u32, sqlkit::Value)>,
    batch: BindingBatch,
    recost: RecostScratch,
    exec: ExecScratch,
    sql: String,
    /// `(byte offset after record k, accepted cost of record k)` into
    /// `sql`, in candidate order.
    accepts: Vec<(usize, f64)>,
    candidates: usize,
}

impl Lane {
    /// Fresh scratch (buffers grow to steady-state on the first batches).
    pub fn new() -> Lane {
        Lane {
            point: Vec::new(),
            row: Vec::new(),
            batch: BindingBatch::default(),
            recost: RecostScratch::new(),
            exec: ExecScratch::new(),
            sql: String::new(),
            accepts: Vec::new(),
            candidates: 0,
        }
    }

    /// Cost one candidate batch: draw `batch_size` candidates from
    /// `StdRng(seed)`, replay them columnar — estimate metrics through
    /// the recost skeleton, execution metrics through the vectorized
    /// execution plan — and render the accepts. The result is a pure
    /// function of `(ctx, seed, batch_size)` — which shard runs it, and
    /// when, is invisible.
    // detlint::hot
    pub fn run(
        &mut self,
        db: &Database,
        ctx: &PairContext<'_>,
        seed: u64,
        batch_size: usize,
    ) -> Result<(), DbError> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.sql.clear();
        self.accepts.clear();
        self.candidates = batch_size;
        self.batch.reset(&ctx.ids);
        for _ in 0..batch_size {
            ctx.generator.draw(&mut rng, &mut self.point);
            ctx.space.decode_into(&self.point, &mut self.row);
            self.batch.push_row_slice(&self.row)?;
        }
        match ctx.metric {
            AcceptMetric::EstimatedRows | AcceptMetric::EstimatedCost => {
                let results =
                    ctx.handle.plan().recost_batch(db, &self.batch, &mut self.recost)?;
                for (row, &(rows, cost)) in results.iter().enumerate() {
                    let metric = if ctx.metric == AcceptMetric::EstimatedRows {
                        rows
                    } else {
                        cost
                    };
                    if ctx.intervals.interval_of(metric) != Some(ctx.interval) {
                        continue;
                    }
                    let _ = writeln!(self.sql, "-- cost: {metric:.2}");
                    ctx.skeleton.render_row(&self.batch, row, &mut self.sql);
                    self.sql.push_str(";\n");
                    self.accepts.push((self.sql.len(), metric));
                }
            }
            AcceptMetric::ExecutedRows | AcceptMetric::ExecutedMicros => {
                // detlint::allow(hot_alloc): the exec plan is built once per template behind get_or_init and cached; steady-state batches only clone the Arc
                let plan = ctx.handle.exec_plan(db);
                let results = plan.execute_batch(db, &self.batch, &mut self.exec)?;
                for (row, result) in results.iter().enumerate() {
                    // Candidates come from the template's own profiled
                    // placeholder space, so per-row failures indicate a
                    // broken pair — fail the batch like a recost error.
                    let (rows, micros) = match result {
                        Ok(pair) => *pair,
                        Err(error) => return Err(error.clone()),
                    };
                    let metric = if ctx.metric == AcceptMetric::ExecutedRows {
                        rows
                    } else {
                        micros
                    };
                    if ctx.intervals.interval_of(metric) != Some(ctx.interval) {
                        continue;
                    }
                    let _ = writeln!(self.sql, "-- cost: {metric:.2}");
                    ctx.skeleton.render_row(&self.batch, row, &mut self.sql);
                    self.sql.push_str(";\n");
                    self.accepts.push((self.sql.len(), metric));
                }
            }
        }
        Ok(())
    }

    /// Accepted records of the last batch: `(end byte offset, cost)`.
    pub fn accepts(&self) -> &[(usize, f64)] {
        &self.accepts
    }

    /// Candidates costed in the last batch.
    pub fn candidates(&self) -> usize {
        self.candidates
    }

    /// Rendered bytes of the first `take` accepted records.
    pub fn accepted_chunk(&self, take: usize) -> &[u8] {
        if take == 0 {
            return &[];
        }
        &self.sql.as_bytes()[..self.accepts[take - 1].0]
    }
}

impl Default for Lane {
    fn default() -> Lane {
        Lane::new()
    }
}

/// Run the amplification stage: apportion `config.n` across intervals and
/// converged templates (largest-remainder, canonical tie-breaks), then
/// stream accepted candidates to `out` in canonical batch order. Returns
/// the accounting; I/O errors from the sink propagate.
pub fn amplify_workload<W: Write>(
    oracle: &CostOracle<'_>,
    profiled: &[ProfiledTemplate],
    target: &TargetDistribution,
    cost_type: CostType,
    config: &AmplifyConfig,
    seed: u64,
    out: W,
) -> io::Result<AmplifyStats> {
    let mut stats = AmplifyStats {
        requested: config.n,
        histogram: vec![0.0; target.intervals.count],
        per_interval: (0..target.intervals.count)
            .map(|j| IntervalAmplifyStats { interval: j, ..IntervalAmplifyStats::default() })
            .collect(),
        ..AmplifyStats::default()
    };
    let mut writer = StreamingSqlWriter::new(out);
    if config.n == 0 {
        writer.finish()?;
        return Ok(stats);
    }
    let physical_before = oracle.stats().physical_evals;
    let shards = if config.shards == 0 { oracle.threads().max(1) } else { config.shards };
    let batch_size = if config.batch == 0 { DEFAULT_BATCH } else { config.batch };
    let threads = oracle.threads().max(1).min(shards);
    let db = oracle.db();

    // Interval quotas, then per-interval template quotas weighted by each
    // template's conforming-probe count — templates the search actually
    // converged on for that interval carry its amplified mass.
    let interval_quotas = scaled_quotas(&target.counts, config.n);
    for (j, &q) in interval_quotas.iter().enumerate() {
        stats.per_interval[j].quota = q;
    }

    struct Pair<'a> {
        ctx: PairContext<'a>,
        quota: u64,
        seed: u64,
    }
    let mut pairs: Vec<Pair<'_>> = Vec::new();
    for (j, &interval_quota) in interval_quotas.iter().enumerate() {
        if interval_quota == 0 {
            continue;
        }
        let weights: Vec<f64> = profiled
            .iter()
            .map(|t| {
                t.evaluations
                    .iter()
                    .filter(|e| target.intervals.interval_of(e.value) == Some(j))
                    .count() as f64
            })
            .collect();
        let template_quotas = scaled_quotas(&weights, interval_quota);
        let mut served = 0u64;
        for (t, &quota) in template_quotas.iter().enumerate() {
            if quota == 0 {
                continue;
            }
            let Ok(handle) = oracle.prepare(&profiled[t].template) else {
                continue;
            };
            let Some(ctx) = PairContext::new(
                &profiled[t],
                handle,
                cost_type,
                target.intervals.clone(),
                j,
            ) else {
                continue;
            };
            // Seed chained on (interval, template) identity, not pair
            // ordinal, so adding/removing other pairs never reseeds this
            // one.
            let pair_seed = split_seed(split_seed(seed, j as u64), t as u64);
            pairs.push(Pair { ctx, quota, seed: pair_seed });
            stats.per_interval[j].pairs += 1;
            served += quota;
        }
        if served == 0 {
            stats.unserved_intervals.push(j);
        }
    }
    stats.pairs = pairs.len() as u64;

    writer.comment(&format!(
        "SQLBarber amplified workload: {} queries requested over {} intervals",
        config.n, target.intervals.count
    ))?;

    let mut acc = DistributionAccumulator::new(target.intervals.clone());
    let lanes: Vec<OrderedMutex<Lane>> =
        (0..shards).map(|_| OrderedMutex::new(lockorder::LANES, Lane::new())).collect();

    for pair in &pairs {
        let mut emitted = 0u64;
        let mut consumed = 0u64;
        let max_batches = pair
            .quota
            .saturating_mul(CANDIDATE_FACTOR)
            .div_ceil(batch_size as u64)
            .max(MIN_BATCH_ATTEMPTS);
        let mut failed = false;
        while emitted < pair.quota && consumed < max_batches && !failed {
            let wave = shards.min((max_batches - consumed) as usize).max(1);
            let batch_indices: Vec<u64> = (0..wave as u64).map(|s| consumed + s).collect();
            let results: Vec<Result<(), DbError>> =
                parallel_map(threads, &batch_indices, |slot, &b| {
                    lanes[slot].lock().run(db, &pair.ctx, split_seed(pair.seed, b), batch_size)
                });
            // Flush barrier: consume in canonical batch order until the
            // quota fills; later speculative batches are discarded unseen
            // and unaccounted, so shard count never shows in the output.
            for (slot, result) in results.iter().enumerate() {
                if emitted >= pair.quota {
                    break;
                }
                consumed += 1;
                if result.is_err() {
                    // A recost failure is a property of the batch content,
                    // not of scheduling — abort the pair deterministically
                    // and let the remainder surface as shortfall.
                    failed = true;
                    break;
                }
                let lane = lanes[slot].lock();
                stats.candidates += lane.candidates() as u64;
                stats.batches += 1;
                stats.per_interval[pair.ctx.interval].candidates += lane.candidates() as u64;
                let take = ((pair.quota - emitted) as usize).min(lane.accepts().len());
                if take > 0 {
                    writer.write_records(lane.accepted_chunk(take), take as u64)?;
                    for &(_, cost) in &lane.accepts()[..take] {
                        acc.record(cost);
                    }
                    emitted += take as u64;
                }
            }
        }
        stats.per_interval[pair.ctx.interval].emitted += emitted;
    }

    stats.emitted = writer.records();
    debug_assert_eq!(stats.emitted, acc.total(), "accepted costs are in-range by construction");
    stats.histogram = acc.counts().to_vec();
    stats.shortfall = config.n - stats.emitted;
    let target_mass: f64 = target.total();
    if target_mass > 0.0 {
        let scale = config.n as f64 / target_mass;
        let scaled: Vec<f64> = target.counts.iter().map(|c| c * scale).collect();
        stats.wasserstein =
            wasserstein_distance(&scaled, acc.counts(), target.intervals.width());
    }
    writer.comment(&format!(
        "amplified: {} emitted, {} short",
        stats.emitted, stats.shortfall
    ))?;
    writer.finish()?;
    stats.oracle_misses = oracle.stats().physical_evals - physical_before;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::profile_template;
    use sqlkit::parse_template;

    fn tpch() -> Database {
        minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
    }

    fn profiled_pair_for(db: &Database, cost_type: CostType) -> Vec<ProfiledTemplate> {
        let oracle = CostOracle::new(db, 0);
        let mut rng = StdRng::seed_from_u64(11);
        [
            "SELECT l.l_orderkey FROM lineitem AS l WHERE l.l_extendedprice > {p_1}",
            "SELECT l.l_orderkey FROM lineitem AS l \
             WHERE l.l_quantity > {p_1} AND l.l_extendedprice <= {p_2}",
        ]
        .iter()
        .map(|sql| {
            let template = parse_template(sql).unwrap();
            profile_template(&oracle, template, cost_type, 48, &mut rng)
        })
        .collect()
    }

    fn profiled_pair(db: &Database) -> Vec<ProfiledTemplate> {
        profiled_pair_for(db, CostType::Cardinality)
    }

    fn sample_target(db: &Database, profiled: &[ProfiledTemplate]) -> TargetDistribution {
        let _ = db;
        let max = profiled
            .iter()
            .flat_map(|t| t.costs.iter())
            .fold(0.0f64, |a, &b| a.max(b));
        let grid = CostIntervals::new(0.0, (max * 1.05).max(1.0), 5);
        let all: Vec<f64> = profiled.iter().flat_map(|t| t.costs.iter().copied()).collect();
        TargetDistribution::from_samples(&all, grid, 200)
    }

    #[test]
    fn skeleton_render_matches_instantiate() {
        let db = tpch();
        let template = parse_template(
            "SELECT l.l_orderkey FROM lineitem AS l \
             WHERE l.l_quantity > {p_2} AND l.l_extendedprice BETWEEN {p_2} AND {p_7}",
        )
        .unwrap();
        let space = PlaceholderSpace::build(&db, &template);
        let skeleton = RenderedSkeleton::new(&template);
        assert_eq!(skeleton.slots(), &[2, 2, 7], "repeated placeholder splices twice");
        let mut batch = BindingBatch::new(template.placeholders());
        let mut row = Vec::new();
        for (r, unit) in [[0.1, 0.9], [0.5, 0.5], [1.0, 0.0]].iter().enumerate() {
            space.decode_into(unit, &mut row);
            batch.push_row_slice(&row).unwrap();
            let mut rendered = String::new();
            skeleton.render_row(&batch, r, &mut rendered);
            let map: std::collections::HashMap<u32, sqlkit::Value> =
                row.iter().cloned().collect();
            let direct = template.instantiate(&map).unwrap().to_string();
            assert_eq!(rendered, direct);
        }
    }

    #[test]
    fn fitted_draws_stay_in_widened_box() {
        let points: Vec<Vec<f64>> = vec![vec![0.4, 0.6], vec![0.5, 0.55], vec![0.45, 0.7]];
        let gen = FittedGenerator::fit(2, points.iter().map(|p| p.as_slice())).unwrap();
        let (lo, hi) = gen.bounds();
        assert!(lo[0] < 0.4 && hi[0] > 0.5, "box is widened");
        let mut rng = StdRng::seed_from_u64(3);
        let mut out = Vec::new();
        for _ in 0..500 {
            gen.draw(&mut rng, &mut out);
            assert_eq!(out.len(), 2);
            for k in 0..2 {
                assert!(out[k] >= lo[k] && out[k] <= hi[k], "draw escaped the box");
            }
        }
    }

    #[test]
    fn fit_requires_conforming_support() {
        assert!(FittedGenerator::fit(2, std::iter::empty()).is_none());
    }

    #[test]
    fn lane_runs_are_pure_functions_of_their_seed() {
        let db = tpch();
        let profiled = profiled_pair(&db);
        let oracle = CostOracle::new(&db, 0);
        let target = sample_target(&db, &profiled);
        let handle = oracle.prepare(&profiled[0].template).unwrap();
        let j = (0..target.intervals.count)
            .find(|&j| {
                profiled[0]
                    .evaluations
                    .iter()
                    .any(|e| target.intervals.interval_of(e.value) == Some(j))
            })
            .expect("some interval has support");
        let ctx = PairContext::new(
            &profiled[0],
            handle,
            CostType::Cardinality,
            target.intervals.clone(),
            j,
        )
        .unwrap();
        let mut a = Lane::new();
        let mut b = Lane::new();
        a.run(&db, &ctx, 42, 256).unwrap();
        // Warm `b` with a different seed first: reuse must not leak.
        b.run(&db, &ctx, 7, 256).unwrap();
        b.run(&db, &ctx, 42, 256).unwrap();
        assert_eq!(a.accepts(), b.accepts());
        assert_eq!(a.accepted_chunk(a.accepts().len()), b.accepted_chunk(b.accepts().len()));
    }

    #[test]
    fn amplified_output_is_invariant_to_shards_and_threads() {
        let db = tpch();
        let profiled = profiled_pair(&db);
        let target = sample_target(&db, &profiled);
        let mut baseline: Option<(Vec<u8>, AmplifyStats)> = None;
        for (threads, shards) in [(0usize, 1usize), (0, 4), (4, 3), (4, 8)] {
            let oracle = CostOracle::new(&db, threads);
            let config = AmplifyConfig { n: 3000, shards, batch: 256, out: None };
            let mut buf = Vec::new();
            let stats = amplify_workload(
                &oracle,
                &profiled,
                &target,
                CostType::Cardinality,
                &config,
                99,
                &mut buf,
            )
            .unwrap();
            assert!(stats.emitted > 0, "nothing amplified");
            assert_eq!(stats.oracle_misses, 0, "amplification must bypass the oracle");
            assert_eq!(stats.emitted + stats.shortfall, stats.requested);
            match &baseline {
                None => baseline = Some((buf, stats)),
                Some((bytes, base)) => {
                    assert_eq!(bytes, &buf, "threads={threads} shards={shards}: bytes diverged");
                    assert_eq!(base, &stats, "threads={threads} shards={shards}: stats diverged");
                }
            }
        }
    }

    #[test]
    fn execution_cost_types_amplify_deterministically() {
        let db = tpch();
        for cost_type in [CostType::ActualCardinality, CostType::ExecutionTimeMicros] {
            // Profile (and build the target) under the same metric the
            // amplifier accepts on, so conforming probes exist.
            let profiled = profiled_pair_for(&db, cost_type);
            let target = sample_target(&db, &profiled);
            let mut baseline: Option<(Vec<u8>, AmplifyStats)> = None;
            for (threads, shards) in [(0usize, 1usize), (4, 3)] {
                let oracle = CostOracle::new(&db, threads);
                let config = AmplifyConfig { n: 400, shards, batch: 64, out: None };
                let mut buf = Vec::new();
                let stats = amplify_workload(
                    &oracle, &profiled, &target, cost_type, &config, 7, &mut buf,
                )
                .unwrap();
                assert!(!stats.unsupported_cost_type, "{cost_type:?} must amplify");
                assert!(stats.emitted > 0, "{cost_type:?}: nothing amplified");
                assert_eq!(
                    stats.oracle_misses, 0,
                    "{cost_type:?}: amplification must bypass the oracle"
                );
                match &baseline {
                    None => baseline = Some((buf, stats)),
                    Some((bytes, base)) => {
                        assert_eq!(bytes, &buf, "{cost_type:?}: bytes diverged");
                        assert_eq!(base, &stats, "{cost_type:?}: stats diverged");
                    }
                }
            }
        }
    }
}
