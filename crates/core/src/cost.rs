//! Cost oracle.
//!
//! Definition 2.10: "The query cost type could be cardinality, execution
//! plan cost, execution time, or any user-defined one. These cost metrics
//! can be obtained by estimations from the query optimizer or by actual
//! execution." The paper's evaluation uses the optimizer estimates
//! (`EXPLAIN`); actual-execution variants are provided for completeness.

use minidb::{Database, DbError};
use sqlkit::Select;

/// Which cost metric drives generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostType {
    /// Optimizer-estimated output rows (`EXPLAIN`).
    Cardinality,
    /// Optimizer-estimated total plan cost (`EXPLAIN`).
    PlanCost,
    /// Actual row count from execution.
    ActualCardinality,
    /// Deterministic execution-time proxy in microseconds: executor work
    /// units (rows scanned, join pairs considered, records materialized)
    /// scaled by [`minidb::WORK_UNIT_MICROS`]. A pure function of the
    /// statement and the data — bit-identical across runs and machines,
    /// unlike wall-clock time.
    ExecutionTimeMicros,
}

impl CostType {
    /// Map a benchmark-level cost type (Table 1) to the oracle used in the
    /// corresponding experiment. `Both` appears in Figure 5 as cardinality
    /// and Figure 6 as plan cost; callers pick per figure.
    pub fn from_benchmark(cost_type: workload::CostType, cardinality_view: bool) -> CostType {
        match (cost_type, cardinality_view) {
            (workload::CostType::Cardinality, _) => CostType::Cardinality,
            (workload::CostType::PlanCost, _) => CostType::PlanCost,
            (workload::CostType::Both, true) => CostType::Cardinality,
            (workload::CostType::Both, false) => CostType::PlanCost,
        }
    }

    /// True when the metric requires executing the query rather than
    /// explaining it.
    pub fn requires_execution(self) -> bool {
        matches!(self, CostType::ActualCardinality | CostType::ExecutionTimeMicros)
    }
}

/// Measure the cost of an executable statement.
pub fn query_cost(db: &Database, select: &Select, cost_type: CostType) -> Result<f64, DbError> {
    match cost_type {
        CostType::Cardinality => Ok(db.explain(select)?.estimated_rows),
        CostType::PlanCost => Ok(db.explain(select)?.total_cost),
        CostType::ActualCardinality => Ok(db.execute(select)?.cardinality() as f64),
        CostType::ExecutionTimeMicros => Ok(db.execute(select)?.work_micros()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkit::parse_select;

    #[test]
    fn estimated_and_actual_metrics_are_available() {
        let db = minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny());
        let q = parse_select("SELECT * FROM lineitem WHERE lineitem.l_quantity > 25").unwrap();
        let card = query_cost(&db, &q, CostType::Cardinality).unwrap();
        let plan = query_cost(&db, &q, CostType::PlanCost).unwrap();
        let actual = query_cost(&db, &q, CostType::ActualCardinality).unwrap();
        let time = query_cost(&db, &q, CostType::ExecutionTimeMicros).unwrap();
        assert!(card > 0.0 && plan > 0.0 && actual > 0.0 && time > 0.0);
        // estimate should be in the ballpark of the truth
        assert!((card - actual).abs() / actual < 0.5, "card {card} vs {actual}");
    }

    #[test]
    fn benchmark_mapping_respects_both() {
        assert_eq!(
            CostType::from_benchmark(workload::CostType::Both, true),
            CostType::Cardinality
        );
        assert_eq!(
            CostType::from_benchmark(workload::CostType::Both, false),
            CostType::PlanCost
        );
        assert_eq!(
            CostType::from_benchmark(workload::CostType::PlanCost, true),
            CostType::PlanCost
        );
        assert!(CostType::ExecutionTimeMicros.requires_execution());
        assert!(!CostType::Cardinality.requires_execution());
    }
}
