//! Template profiling via strategic sampling (§5.1).
//!
//! Each seed template is instantiated at Latin-Hypercube-sampled predicate
//! values and costed on the DBMS (`EXPLAIN` by default). The resulting
//! cost vectors tell the pipeline which cost ranges each template can
//! reach; the raw evaluations are retained to warm-start the Bayesian
//! optimizer (§5.3's history reuse).

use crate::cost::CostType;
use crate::oracle::CostOracle;
use crate::sampler::PlaceholderSpace;
use bayesopt::parallel::{parallel_map, split_seed};
use bayesopt::{latin_hypercube, Evaluation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlkit::Template;

/// A template with its search space and profiling results — the `(T_i,
/// C_i)` pairs of the paper's `P`.
#[derive(Debug, Clone)]
pub struct ProfiledTemplate {
    pub template: Template,
    pub space: PlaceholderSpace,
    /// Observed costs (finite values only; failed instantiations are
    /// dropped, as a failed probe contributes no cost observation).
    pub costs: Vec<f64>,
    /// `(unit point, cost)` pairs for BO warm-starting.
    pub evaluations: Vec<Evaluation>,
    /// Points consumed from the search space so far (Algorithm 3's `R`
    /// bookkeeping subtracts this from the space size).
    pub consumed: f64,
}

impl ProfiledTemplate {
    /// Variety factor `v_i = |unique(C_i)| / |C_i|` (Eq. 2) — penalizes
    /// templates whose cost barely responds to predicate values.
    pub fn variety(&self) -> f64 {
        if self.costs.is_empty() {
            return 0.0;
        }
        let mut keys: Vec<i64> = self.costs.iter().map(|c| (c * 1e6) as i64).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len() as f64 / self.costs.len() as f64
    }

    /// Closeness `s_ij` of this template to interval `[lo, hi)` (Eq. 2–3).
    pub fn closeness(&self, lo: f64, hi: f64) -> f64 {
        if self.costs.is_empty() {
            return 0.0;
        }
        let mean_distance = self
            .costs
            .iter()
            .map(|&c| {
                if c < lo {
                    lo - c
                } else if c > hi {
                    c - hi
                } else {
                    0.0
                }
            })
            .sum::<f64>()
            / self.costs.len() as f64;
        (1.0 / (1.0 + mean_distance)) * self.variety()
    }

    /// Remaining search-space size (never below zero).
    pub fn remaining_space(&self) -> f64 {
        (self.space.size() - self.consumed).max(0.0)
    }

    /// Median observed cost (0 when unprofiled).
    pub fn median_cost(&self) -> f64 {
        if self.costs.is_empty() {
            return 0.0;
        }
        let mut sorted = self.costs.clone();
        sorted.sort_by(f64::total_cmp);
        sorted[sorted.len() / 2]
    }

    /// Serialize for a checkpoint. The placeholder space is *not* stored:
    /// it is a pure function of template + schema and is rebuilt by
    /// [`ProfiledTemplate::from_state`].
    pub fn to_state(&self) -> crate::snapshot::ProfiledState {
        crate::snapshot::ProfiledState {
            sql: self.template.sql(),
            costs: self.costs.clone(),
            evaluations: self
                .evaluations
                .iter()
                .map(|e| (e.point.clone(), e.value))
                .collect(),
            consumed: self.consumed,
        }
    }

    /// Rebuild from a checkpoint: re-parse the template and re-derive its
    /// placeholder space from `db`. Errors if the stored SQL no longer
    /// parses (snapshot from an incompatible build).
    pub fn from_state(
        db: &minidb::Database,
        state: &crate::snapshot::ProfiledState,
    ) -> Result<ProfiledTemplate, String> {
        let template = sqlkit::parse_template(&state.sql)
            .map_err(|e| format!("snapshot template no longer parses: {e} ({})", state.sql))?;
        let space = PlaceholderSpace::build(db, &template);
        Ok(ProfiledTemplate {
            template,
            space,
            costs: state.costs.clone(),
            evaluations: state
                .evaluations
                .iter()
                .map(|(point, value)| Evaluation { point: point.clone(), value: *value })
                .collect(),
            consumed: state.consumed,
        })
    }
}

/// Profile one template with `n_samples` LHS-sampled instantiations.
/// Costing goes through the oracle's memo cache; a cache hit still counts
/// toward `consumed` (the probe was logically spent).
pub fn profile_template(
    oracle: &CostOracle,
    template: Template,
    cost_type: CostType,
    n_samples: usize,
    rng: &mut StdRng,
) -> ProfiledTemplate {
    let space = PlaceholderSpace::build(oracle.db(), &template);
    let mut profiled = ProfiledTemplate {
        template,
        space,
        costs: Vec::with_capacity(n_samples),
        evaluations: Vec::with_capacity(n_samples),
        consumed: 0.0,
    };
    // A ground template has exactly one instantiation.
    let n = if profiled.space.arity() == 0 { 1 } else { n_samples.max(1) };
    let points = latin_hypercube(n, profiled.space.arity(), rng);
    // Plan the template once and recost per point; templates the planner
    // rejects outright fall back to per-point instantiation (keeping the
    // old skip-on-error behavior).
    let prepared = oracle.prepare(&profiled.template).ok();
    for point in points {
        profiled.consumed += 1.0;
        let bindings = profiled.space.decode(&point);
        let cost = match &prepared {
            Some(handle) => oracle.cost_prepared(handle, &bindings, cost_type),
            None => {
                let Ok(query) = profiled.template.instantiate(&bindings) else { continue };
                oracle.query_cost(&query, cost_type)
            }
        };
        let Ok(cost) = cost else { continue };
        if cost.is_finite() {
            profiled.costs.push(cost);
            profiled.evaluations.push(Evaluation { point, value: cost });
        }
    }
    profiled
}

/// Profile a batch, spending `fraction` of the total query budget on
/// profiling, split evenly (the paper keeps overhead low by profiling with
/// ~15% of the number of queries to generate).
///
/// Templates are independent, so they fan out across the oracle's worker
/// threads; each gets its own RNG seeded from `(seed, template index)`
/// and results are merged in input order, so the output is identical at
/// any thread count.
pub fn profile_batch(
    oracle: &CostOracle,
    templates: Vec<Template>,
    cost_type: CostType,
    total_queries: usize,
    fraction: f64,
    seed: u64,
) -> Vec<ProfiledTemplate> {
    if templates.is_empty() {
        return Vec::new();
    }
    let budget = ((total_queries as f64 * fraction) as usize).max(templates.len());
    let per_template = (budget / templates.len()).max(3);
    parallel_map(oracle.threads(), &templates, |i, template| {
        let mut rng = StdRng::seed_from_u64(split_seed(seed, i as u64));
        profile_template(oracle, template.clone(), cost_type, per_template, &mut rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::Database;
    use sqlkit::parse_template;

    fn tpch() -> Database {
        minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
    }

    #[test]
    fn profiling_produces_varied_costs() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let template = parse_template(
            "SELECT COUNT(*) FROM lineitem WHERE lineitem.l_extendedprice > {p_1}",
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let profiled =
            profile_template(&oracle, template, CostType::PlanCost, 20, &mut rng);
        assert_eq!(profiled.costs.len(), 20);
        assert!(profiled.variety() > 0.5, "variety {}", profiled.variety());
        assert_eq!(profiled.consumed, 20.0);
    }

    #[test]
    fn cardinality_profiles_span_a_range() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let template = parse_template(
            "SELECT l.l_orderkey FROM lineitem AS l WHERE l.l_extendedprice > {p_1}",
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let profiled =
            profile_template(&oracle, template, CostType::Cardinality, 30, &mut rng);
        let min = profiled.costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = profiled.costs.iter().cloned().fold(0.0, f64::max);
        // The widened bounds should reach (near-)empty and (near-)full.
        assert!(min < 600.0, "min {min}");
        assert!(max > 4_000.0, "max {max}");
    }

    #[test]
    fn closeness_prefers_templates_near_the_interval() {
        let near = ProfiledTemplate {
            template: parse_template("SELECT * FROM t").unwrap(),
            space: PlaceholderSpace { dims: vec![], space: Default::default() },
            costs: vec![1000.0, 1100.0, 1200.0],
            evaluations: vec![],
            consumed: 3.0,
        };
        let far = ProfiledTemplate { costs: vec![9000.0, 9100.0, 9300.0], ..near.clone() };
        let lo = 900.0;
        let hi = 1300.0;
        assert!(near.closeness(lo, hi) > far.closeness(lo, hi));
        // inside-interval costs give the max closeness = variety
        assert!((near.closeness(lo, hi) - near.variety()).abs() < 1e-12);
    }

    #[test]
    fn constant_cost_template_has_low_variety() {
        let flat = ProfiledTemplate {
            template: parse_template("SELECT * FROM t").unwrap(),
            space: PlaceholderSpace { dims: vec![], space: Default::default() },
            costs: vec![500.0; 10],
            evaluations: vec![],
            consumed: 10.0,
        };
        assert!((flat.variety() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ground_template_profiles_once() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let template = parse_template("SELECT COUNT(*) FROM nation").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let profiled =
            profile_template(&oracle, template, CostType::PlanCost, 15, &mut rng);
        assert_eq!(profiled.costs.len(), 1);
    }

    #[test]
    fn batch_splits_budget() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let templates = vec![
            parse_template("SELECT * FROM orders WHERE orders.o_totalprice > {p_1}").unwrap(),
            parse_template("SELECT * FROM customer WHERE customer.c_acctbal > {p_1}").unwrap(),
        ];
        let batch =
            profile_batch(&oracle, templates, CostType::PlanCost, 100, 0.15, 4);
        assert_eq!(batch.len(), 2);
        // 15 total / 2 templates ≈ 7 each
        assert!(batch.iter().all(|p| (5..=9).contains(&p.costs.len())));
    }

    #[test]
    fn batch_is_identical_at_any_thread_count() {
        let db = tpch();
        let templates = || {
            vec![
                parse_template("SELECT * FROM orders WHERE orders.o_totalprice > {p_1}")
                    .unwrap(),
                parse_template("SELECT * FROM customer WHERE customer.c_acctbal > {p_1}")
                    .unwrap(),
                parse_template(
                    "SELECT l.l_orderkey FROM lineitem AS l \
                     WHERE l.l_extendedprice > {p_1}",
                )
                .unwrap(),
                parse_template("SELECT COUNT(*) FROM nation").unwrap(),
            ]
        };
        let run = |threads: usize| {
            let oracle = CostOracle::new(&db, threads);
            let batch =
                profile_batch(&oracle, templates(), CostType::Cardinality, 200, 0.15, 99);
            let flat: Vec<(Vec<u64>, f64)> = batch
                .iter()
                .map(|p| {
                    (p.costs.iter().map(|c| c.to_bits()).collect(), p.consumed)
                })
                .collect();
            (flat, oracle.stats())
        };
        let (serial, serial_stats) = run(1);
        let (parallel, parallel_stats) = run(4);
        assert_eq!(serial, parallel);
        assert_eq!(serial_stats, parallel_stats);
    }

    #[test]
    fn cache_hits_still_count_as_consumed_probes() {
        // Profiling the same template twice through one oracle: the
        // second pass answers from the memo cache, but `consumed` (the
        // paper's logical evaluation budget) must not shrink — only the
        // physical-eval count stays flat.
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let template = parse_template(
            "SELECT * FROM orders WHERE orders.o_totalprice > {p_1}",
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let first =
            profile_template(&oracle, template.clone(), CostType::PlanCost, 12, &mut rng);
        let physical_after_first = oracle.stats().physical_evals;
        let mut rng = StdRng::seed_from_u64(7); // same points again
        let second =
            profile_template(&oracle, template, CostType::PlanCost, 12, &mut rng);
        assert_eq!(first.consumed, second.consumed, "hits must not deflate consumed");
        assert_eq!(second.consumed, 12.0);
        let stats = oracle.stats();
        assert_eq!(
            stats.physical_evals, physical_after_first,
            "second pass must be pure cache hits"
        );
        assert_eq!(stats.logical_probes, 24);
        assert_eq!(stats.cache_hits, stats.logical_probes - stats.physical_evals);
    }
}
