//! # sqlbarber — customized and realistic SQL workload generation
//!
//! Rust implementation of **SQLBarber** (Lao & Trummer, SIGMOD 2025): a
//! system that generates SQL workloads which are *customized* (templates
//! follow user-provided natural-language specifications) and *realistic*
//! (instantiated query costs match a target distribution derived from
//! production statistics).
//!
//! The two core components mirror the paper's §4 and §5:
//!
//! * [`template_gen`] — the **Customized SQL Template Generator**: schema
//!   summary, join-path sampling, prompt construction, LLM generation,
//!   and the iterative check-and-rewrite loop (Algorithm 1);
//! * the **Cost-Aware Query Generator**:
//!   [`profiler`] (§5.1, LHS profiling), [`refine`] (§5.2, Algorithm 2 —
//!   adaptive template refinement & pruning), and [`bo_search`] (§5.3,
//!   Algorithm 3 — BO-based predicate search), all costing through the
//!   shared [`oracle`] (memoized, thread-parallel `EXPLAIN`).
//!
//! [`driver`] wires everything into an end-to-end
//! [`driver::SqlBarber`] with ablation switches (used to reproduce the
//! paper's Figure 8b), and [`report`] collects the measurements every
//! figure of the paper is drawn from.
//!
//! ## Quickstart
//!
//! ```
//! use sqlbarber::driver::{SqlBarber, SqlBarberConfig};
//! use workload::{CostIntervals, TargetDistribution};
//!
//! let db = minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny());
//! let target = TargetDistribution::uniform(CostIntervals::paper_default(5), 50);
//! let mut barber = SqlBarber::new(&db, SqlBarberConfig::fast_test());
//! let report = barber
//!     .generate(&workload::redset::redset_template_specs(1)[..4], &target,
//!               sqlbarber::cost::CostType::Cardinality)
//!     .unwrap();
//! assert!(!report.queries.is_empty());
//! ```

pub mod amplify;
pub mod bo_search;
pub mod cost;
pub mod driver;
pub mod join_path;
pub mod lockorder;
pub mod oracle;
pub mod profiler;
pub mod refine;
pub mod report;
pub mod sampler;
mod scheduler;
pub mod snapshot;
pub mod template_gen;

pub use amplify::{amplify_workload, AmplifyConfig, AmplifyStats};
pub use cost::CostType;
pub use driver::{
    CheckpointConfig, GenerateError, KillMode, KillPoint, KillSwitch, SqlBarber,
    SqlBarberConfig,
};
pub use oracle::{ColumnarScratch, CostOracle, OracleStats, PreparedHandle};
pub use report::GenerationReport;
