//! Generation reports.
//!
//! A [`GenerationReport`] carries everything the paper's figures are drawn
//! from: the accepted queries, the Wasserstein-distance-over-time series
//! (Figures 5/6/8b), end-to-end and per-phase timings (the E2E bars and
//! Figure 7), template counts and LLM token usage (Table 2), and the
//! Figure-8a rewrite statistics.

use crate::amplify::AmplifyStats;
use crate::bo_search::GeneratedQuery;
use crate::template_gen::RewriteStats;
use llm::{ResilienceStats, TokenUsage};
use std::time::Duration;

/// Graceful-degradation counters: what the pipeline *lost* to transport
/// failures instead of aborting over. Zero across the board on a healthy
/// transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationStats {
    /// LLM calls that surfaced a transport error to a pipeline phase
    /// (after the resilience layer's retries were exhausted).
    pub llm_failures: u64,
    /// Responses that arrived but failed protocol parsing (the typed
    /// `Malformed` outcome — counted as failed attempts, never silently
    /// swallowed).
    pub malformed_responses: u64,
    /// Specifications abandoned by Algorithm 1 because their initial
    /// generation never arrived; the batch continues without them.
    pub abandoned_specs: u64,
    /// Interval-refinement passes Algorithm 2 skipped because every
    /// refine call for the interval failed; the outer round retries them.
    pub abandoned_intervals: u64,
}

impl DegradationStats {
    /// Whether anything degraded at all.
    pub fn is_quiet(&self) -> bool {
        *self == DegradationStats::default()
    }

    /// Fold another phase's counters into this one.
    pub fn merge(&mut self, other: &DegradationStats) {
        self.llm_failures += other.llm_failures;
        self.malformed_responses += other.malformed_responses;
        self.abandoned_specs += other.abandoned_specs;
        self.abandoned_intervals += other.abandoned_intervals;
    }
}

/// Wall-clock spent in each pipeline phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    pub template_generation: Duration,
    pub profiling: Duration,
    pub refinement: Duration,
    pub predicate_search: Duration,
    /// Post-convergence amplification (zero when the stage is disabled).
    pub amplification: Duration,
}

/// Full record of one end-to-end generation run.
#[derive(Debug, Clone, Default)]
pub struct GenerationReport {
    /// Accepted queries (cost-conforming workload).
    pub queries: Vec<GeneratedQuery>,
    /// `(seconds since start, Wasserstein distance)` samples.
    pub distance_series: Vec<(f64, f64)>,
    /// Final Wasserstein distance between target and achieved counts.
    pub final_distance: f64,
    /// End-to-end wall time.
    pub elapsed: Duration,
    /// Per-phase wall times.
    pub phases: PhaseTimes,
    /// Cumulative LLM token usage (Table 2).
    pub llm_usage: TokenUsage,
    /// Seed templates that survived Algorithm 1.
    pub n_seed_templates: usize,
    /// Templates added by Algorithm 2 refinement.
    pub n_refined_templates: usize,
    /// Pool size at the end (after pruning sweeps).
    pub n_final_templates: usize,
    /// Figure-8a series from the template generator.
    pub rewrite_stats: RewriteStats,
    /// Template Alignment Accuracy over the seed templates.
    pub alignment_accuracy: f64,
    /// Achieved per-interval counts.
    pub distribution: Vec<f64>,
    /// Target per-interval counts.
    pub target_counts: Vec<f64>,
    /// Intervals the search gave up on.
    pub skipped_intervals: Vec<usize>,
    /// Cost-oracle evaluations spent (profiling + refinement + search).
    pub evaluations: usize,
    /// Logical cost probes requested from the oracle (cache hits
    /// included — this is the paper's evaluation-budget currency).
    pub oracle_probes: u64,
    /// Probes that actually reached the DBMS planner (distinct memoized
    /// statements plus unmemoizable wall-clock timings).
    pub oracle_physical_evals: u64,
    /// Probes answered from the memo cache (`probes - physical`).
    pub oracle_cache_hits: u64,
    /// Prepared-path probes answered from the binding-key memo.
    pub oracle_prepared_hits: u64,
    /// Prepared-path probes that recosted (or executed) a plan skeleton.
    pub oracle_prepared_misses: u64,
    /// Memo entries discarded by the oracle's second-chance eviction.
    pub oracle_evictions: u64,
    /// Deficit-scheduler rounds executed during the BO search phase.
    pub scheduler_rounds: u64,
    /// Interval BO tasks launched across all scheduler rounds.
    pub scheduler_tasks: u64,
    /// Largest number of tasks any single round ran concurrently.
    pub scheduler_peak_tasks: u64,
    /// Locally accepted queries rejected at a round barrier (the merge's
    /// canonical order resolved an over-admission against them).
    pub scheduler_overadmissions: u64,
    /// Retry/backoff/breaker counters from the LLM's resilience layer.
    pub resilience: ResilienceStats,
    /// What the pipeline degraded over instead of aborting.
    pub degradation: DegradationStats,
    /// Amplification-stage accounting (`--amplify N`); `None` when the
    /// stage did not run.
    pub amplify: Option<AmplifyStats>,
}

impl GenerationReport {
    /// Total SQL templates used (seed + refined) — the paper's Table-2
    /// "#SQL Templates" column.
    pub fn total_templates(&self) -> usize {
        self.n_seed_templates + self.n_refined_templates
    }

    /// Fraction of the target workload actually generated.
    pub fn fill_rate(&self) -> f64 {
        let target: f64 = self.target_counts.iter().sum();
        if target == 0.0 {
            return 1.0;
        }
        self.queries.len() as f64 / target
    }

    /// One-line cost-oracle accounting: logical/physical probe counts
    /// next to the prepared-plan hit/miss (and eviction) counters.
    pub fn oracle_summary(&self) -> String {
        let mut line = format!(
            "oracle: {} probes, {} physical, {} cached; prepared {} hits / {} misses",
            self.oracle_probes,
            self.oracle_physical_evals,
            self.oracle_cache_hits,
            self.oracle_prepared_hits,
            self.oracle_prepared_misses,
        );
        if self.oracle_evictions > 0 {
            line.push_str(&format!(", {} evictions", self.oracle_evictions));
        }
        line
    }

    /// One-line deficit-scheduler accounting: rounds, tasks, peak round
    /// width, and how many local accepts the round barriers rolled back.
    pub fn scheduler_summary(&self) -> String {
        let mut line = format!(
            "scheduler: {} rounds, {} tasks (peak {} concurrent)",
            self.scheduler_rounds, self.scheduler_tasks, self.scheduler_peak_tasks,
        );
        if self.scheduler_overadmissions > 0 {
            line.push_str(&format!(
                ", {} over-admissions resolved",
                self.scheduler_overadmissions
            ));
        }
        line
    }

    /// One-line amplification accounting, or `None` when the stage did
    /// not run: emitted/requested, accept rate, the W₁ distance of the
    /// amplified histogram, and the per-accepted oracle-miss rate (the
    /// near-zero-misses claim, printed even when it is 0).
    pub fn amplify_summary(&self) -> Option<String> {
        let a = self.amplify.as_ref()?;
        if a.unsupported_cost_type {
            return Some(
                "amplify: skipped (cost type requires execution; amplification \
                 replays optimizer estimates)"
                    .to_string(),
            );
        }
        let mut line = format!(
            "amplify: {} / {} queries ({:.1}% accept rate over {} candidates, \
             {} pairs), W1 {:.1}, {} oracle misses ({:.4}/query)",
            a.emitted,
            a.requested,
            a.accept_rate() * 100.0,
            a.candidates,
            a.pairs,
            a.wasserstein,
            a.oracle_misses,
            a.misses_per_accept(),
        );
        if a.shortfall > 0 {
            line.push_str(&format!(", {} short", a.shortfall));
        }
        if !a.unserved_intervals.is_empty() {
            line.push_str(&format!(", unserved intervals {:?}", a.unserved_intervals));
        }
        Some(line)
    }

    /// One-line LLM-resilience accounting: retry/backoff/breaker activity
    /// next to what each pipeline phase degraded over. Printed by both
    /// CLIs alongside [`GenerationReport::oracle_summary`].
    pub fn resilience_summary(&self) -> String {
        let r = &self.resilience;
        let d = &self.degradation;
        if r.is_quiet() && d.is_quiet() {
            return format!("llm: {} calls, no transport faults", r.calls);
        }
        let mut line = format!(
            "llm: {} calls, {} retries ({:.1}s backoff), {} recovered, {} failed",
            r.calls,
            r.retries,
            r.backoff_ms as f64 / 1_000.0,
            r.recoveries,
            r.giveups,
        );
        if r.breaker_trips > 0 || r.circuit_rejections > 0 {
            line.push_str(&format!(
                "; breaker: {} trips, {} rejections, {} probes",
                r.breaker_trips, r.circuit_rejections, r.breaker_probes
            ));
        }
        if r.budget_exhausted > 0 {
            line.push_str(&format!(
                "; retry budget exhausted on {} calls",
                r.budget_exhausted
            ));
        }
        if !d.is_quiet() {
            line.push_str(&format!(
                "\ndegraded: {} specs abandoned, {} intervals skipped, \
                 {} malformed responses, {} failed calls absorbed",
                d.abandoned_specs,
                d.abandoned_intervals,
                d.malformed_responses,
                d.llm_failures,
            ));
        }
        line
    }

    /// Render a short human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} queries in {:.2}s (distance {:.1}, fill {:.1}%, {} templates, \
             {}K tokens, ${:.2})",
            self.queries.len(),
            self.elapsed.as_secs_f64(),
            self.final_distance,
            self.fill_rate() * 100.0,
            self.total_templates(),
            self.llm_usage.total_tokens() / 1000,
            self.llm_usage.cost_usd(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_key_numbers() {
        let report = GenerationReport {
            queries: vec![GeneratedQuery { sql: "SELECT 1 FROM t".into(), cost: 1.0 }],
            final_distance: 12.5,
            elapsed: Duration::from_millis(1500),
            n_seed_templates: 20,
            n_refined_templates: 4,
            target_counts: vec![1.0],
            ..Default::default()
        };
        let text = report.summary();
        assert!(text.contains("1 queries"));
        assert!(text.contains("12.5"));
        assert!(text.contains("24 templates"));
        assert_eq!(report.fill_rate(), 1.0);
    }

    #[test]
    fn oracle_summary_shows_prepared_counters() {
        let report = GenerationReport {
            oracle_probes: 100,
            oracle_physical_evals: 40,
            oracle_cache_hits: 60,
            oracle_prepared_hits: 55,
            oracle_prepared_misses: 35,
            ..Default::default()
        };
        let text = report.oracle_summary();
        assert!(text.contains("100 probes"));
        assert!(text.contains("55 hits / 35 misses"), "{text}");
        assert!(!text.contains("evictions"), "zero evictions stay quiet");
        let evicting =
            GenerationReport { oracle_evictions: 7, ..report }.oracle_summary();
        assert!(evicting.contains("7 evictions"));
    }

    #[test]
    fn scheduler_summary_reports_round_accounting() {
        let report = GenerationReport {
            scheduler_rounds: 12,
            scheduler_tasks: 30,
            scheduler_peak_tasks: 4,
            ..Default::default()
        };
        let text = report.scheduler_summary();
        assert!(text.contains("12 rounds"), "{text}");
        assert!(text.contains("30 tasks (peak 4 concurrent)"), "{text}");
        assert!(!text.contains("over-admissions"), "zero over-admissions stay quiet");
        let noisy = GenerationReport { scheduler_overadmissions: 3, ..report }
            .scheduler_summary();
        assert!(noisy.contains("3 over-admissions resolved"), "{noisy}");
    }

    #[test]
    fn amplify_summary_reports_rates_and_misses() {
        let quiet = GenerationReport::default();
        assert!(quiet.amplify_summary().is_none(), "no stage, no line");
        let report = GenerationReport {
            amplify: Some(AmplifyStats {
                requested: 1000,
                emitted: 990,
                candidates: 4096,
                batches: 4,
                pairs: 3,
                shortfall: 10,
                wasserstein: 12.5,
                oracle_misses: 0,
                ..Default::default()
            }),
            ..Default::default()
        };
        let text = report.amplify_summary().unwrap();
        assert!(text.contains("990 / 1000 queries"), "{text}");
        assert!(text.contains("0 oracle misses (0.0000/query)"), "{text}");
        assert!(text.contains("10 short"), "{text}");
        assert!(!text.contains("unserved"), "no unserved intervals listed");

        let skipped = GenerationReport {
            amplify: Some(AmplifyStats {
                unsupported_cost_type: true,
                ..Default::default()
            }),
            ..Default::default()
        };
        let text = skipped.amplify_summary().unwrap();
        assert!(text.contains("skipped"), "{text}");
    }

    #[test]
    fn fill_rate_handles_empty_target() {
        let report = GenerationReport::default();
        assert_eq!(report.fill_rate(), 1.0);
    }

    #[test]
    fn resilience_summary_is_quiet_without_faults() {
        let report = GenerationReport {
            resilience: ResilienceStats { calls: 40, attempts: 40, ..Default::default() },
            ..Default::default()
        };
        let text = report.resilience_summary();
        assert!(text.contains("no transport faults"), "{text}");
        assert!(!text.contains("degraded"));
    }

    #[test]
    fn resilience_summary_reports_storm_counters() {
        let report = GenerationReport {
            resilience: ResilienceStats {
                calls: 100,
                attempts: 140,
                retries: 40,
                failures: 45,
                recoveries: 35,
                giveups: 5,
                backoff_ms: 12_300,
                breaker_trips: 2,
                breaker_probes: 2,
                circuit_rejections: 3,
                budget_exhausted: 1,
            },
            degradation: DegradationStats {
                llm_failures: 5,
                malformed_responses: 4,
                abandoned_specs: 1,
                abandoned_intervals: 2,
            },
            ..Default::default()
        };
        let text = report.resilience_summary();
        assert!(text.contains("40 retries (12.3s backoff)"), "{text}");
        assert!(text.contains("2 trips, 3 rejections"), "{text}");
        assert!(text.contains("retry budget exhausted on 1 calls"), "{text}");
        assert!(text.contains("1 specs abandoned, 2 intervals skipped"), "{text}");
    }

    #[test]
    fn degradation_merge_accumulates() {
        let mut a = DegradationStats {
            llm_failures: 1,
            malformed_responses: 2,
            abandoned_specs: 3,
            abandoned_intervals: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.llm_failures, 2);
        assert_eq!(a.abandoned_intervals, 8);
        assert!(!a.is_quiet());
        assert!(DegradationStats::default().is_quiet());
    }
}

/// Export helpers: persist a generated workload for use outside this
/// process (benchmark drivers, regression suites).
impl GenerationReport {
    /// Write the workload as a `.sql` file: one statement per line group,
    /// each preceded by a comment recording its measured cost, ready to be
    /// piped into any SQL client.
    pub fn write_sql(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        use std::io::Write;
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(out, "-- SQLBarber workload: {} queries", self.queries.len())?;
        writeln!(out, "-- final Wasserstein distance: {:.2}", self.final_distance)?;
        for query in &self.queries {
            writeln!(out, "-- cost: {:.2}", query.cost)?;
            writeln!(out, "{};", query.sql)?;
        }
        Ok(())
    }

    /// Write a machine-readable manifest (JSON): per-query SQL and cost,
    /// the target and achieved histograms, and run metadata.
    pub fn write_manifest(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut manifest = serde_json::json!({
            "queries": self.queries.iter().map(|q| {
                serde_json::json!({ "sql": q.sql, "cost": q.cost })
            }).collect::<Vec<_>>(),
            "target_counts": self.target_counts,
            "achieved_counts": self.distribution,
            "final_distance": self.final_distance,
            "skipped_intervals": self.skipped_intervals,
            "seed_templates": self.n_seed_templates,
            "refined_templates": self.n_refined_templates,
            "alignment_accuracy": self.alignment_accuracy,
            "elapsed_seconds": self.elapsed.as_secs_f64(),
            "oracle_evaluations": self.evaluations,
            "oracle": serde_json::json!({
                "logical_probes": self.oracle_probes,
                "physical_evals": self.oracle_physical_evals,
                "cache_hits": self.oracle_cache_hits,
                "prepared_hits": self.oracle_prepared_hits,
                "prepared_misses": self.oracle_prepared_misses,
                "evictions": self.oracle_evictions,
            }),
            "scheduler": serde_json::json!({
                "rounds": self.scheduler_rounds,
                "tasks": self.scheduler_tasks,
                "peak_tasks": self.scheduler_peak_tasks,
                "overadmissions": self.scheduler_overadmissions,
            }),
            "llm": serde_json::json!({
                "input_tokens": self.llm_usage.input_tokens,
                "output_tokens": self.llm_usage.output_tokens,
                "requests": self.llm_usage.requests,
                "cost_usd": self.llm_usage.cost_usd(),
            }),
            "resilience": serde_json::json!({
                "calls": self.resilience.calls,
                "attempts": self.resilience.attempts,
                "retries": self.resilience.retries,
                "failures": self.resilience.failures,
                "recoveries": self.resilience.recoveries,
                "giveups": self.resilience.giveups,
                "backoff_ms": self.resilience.backoff_ms,
                "breaker_trips": self.resilience.breaker_trips,
                "breaker_probes": self.resilience.breaker_probes,
                "circuit_rejections": self.resilience.circuit_rejections,
                "budget_exhausted": self.resilience.budget_exhausted,
            }),
            "degradation": serde_json::json!({
                "llm_failures": self.degradation.llm_failures,
                "malformed_responses": self.degradation.malformed_responses,
                "abandoned_specs": self.degradation.abandoned_specs,
                "abandoned_intervals": self.degradation.abandoned_intervals,
            }),
        });
        // The amplification section is present exactly when the stage ran,
        // so manifests from amplified runs are distinguishable and the
        // section participates in bit-identity checks.
        if let Some(a) = &self.amplify {
            if let serde_json::Value::Object(pairs) = &mut manifest {
                pairs.push((
                    "amplify".to_string(),
                    serde_json::json!({
                        "requested": a.requested,
                        "emitted": a.emitted,
                        "candidates": a.candidates,
                        "batches": a.batches,
                        "pairs": a.pairs,
                        "shortfall": a.shortfall,
                        "unserved_intervals": a.unserved_intervals,
                        "histogram": a.histogram,
                        "wasserstein": a.wasserstein,
                        "oracle_misses": a.oracle_misses,
                        "accept_rate": a.accept_rate(),
                        "unsupported_cost_type": a.unsupported_cost_type,
                    }),
                ));
            }
        }
        std::fs::write(path, serde_json::to_string_pretty(&manifest)?)
    }
}

#[cfg(test)]
mod export_tests {
    use super::*;

    fn sample_report() -> GenerationReport {
        GenerationReport {
            queries: vec![
                GeneratedQuery { sql: "SELECT 1 FROM a".into(), cost: 10.5 },
                GeneratedQuery { sql: "SELECT 2 FROM b".into(), cost: 99.0 },
            ],
            final_distance: 0.0,
            target_counts: vec![1.0, 1.0],
            distribution: vec![1.0, 1.0],
            ..Default::default()
        }
    }

    #[test]
    fn sql_export_is_replayable() {
        let dir = std::env::temp_dir().join("sqlbarber_test_export");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("workload.sql");
        sample_report().write_sql(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("SELECT 1 FROM a;"));
        assert!(text.contains("-- cost: 10.50"));
        // every non-comment line is a statement ending in ';'
        for line in text.lines().filter(|l| !l.starts_with("--") && !l.is_empty()) {
            assert!(line.ends_with(';'), "unterminated: {line}");
        }
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let dir = std::env::temp_dir().join("sqlbarber_test_export");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("workload.json");
        sample_report().write_manifest(&path).unwrap();
        let value: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(value["queries"].as_array().unwrap().len(), 2);
        assert_eq!(value["queries"][0]["cost"], 10.5);
        assert_eq!(value["final_distance"], 0.0);
        assert!(
            value.get("amplify").is_none(),
            "no amplify section when the stage did not run"
        );
    }

    #[test]
    fn manifest_records_amplify_section_when_stage_ran() {
        let dir = std::env::temp_dir().join("sqlbarber_test_export");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("workload_amplified.json");
        let report = GenerationReport {
            amplify: Some(crate::amplify::AmplifyStats {
                requested: 500,
                emitted: 500,
                candidates: 2048,
                batches: 2,
                pairs: 2,
                histogram: vec![250.0, 250.0],
                wasserstein: 1.25,
                ..Default::default()
            }),
            ..sample_report()
        };
        report.write_manifest(&path).unwrap();
        let value: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(value["amplify"]["requested"], 500);
        assert_eq!(value["amplify"]["oracle_misses"], 0);
        assert_eq!(value["amplify"]["wasserstein"], 1.25);
        assert_eq!(value["amplify"]["histogram"].as_array().unwrap().len(), 2);
    }
}
