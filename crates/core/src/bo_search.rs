//! BO-based predicate search (§5.3, Algorithm 3).
//!
//! Fills the vertical dimension of the target distribution: for the
//! interval with the largest deficit, the closest templates (Eq. 2) are
//! searched by Bayesian Optimization over their predicate-value spaces,
//! minimizing the distance-to-interval objective (Eq. 5). The paper's
//! bookkeeping is implemented in full: bad `(interval, template)`
//! combinations via the utility ratio (Eq. 6), skip intervals after five
//! fruitless rounds, remaining-search-space tracking `R`, diversity
//! filtering, and closeness-weighted template sampling.
//!
//! The outer loop — which interval to work on, which templates to claim,
//! when to merge results — lives in [`crate::scheduler`]: a
//! deficit-driven round scheduler that runs several interval searches
//! concurrently and merges their bookkeeping at a deterministic round
//! barrier, so the output is bit-identical at any thread count.

use crate::cost::CostType;
use crate::oracle::CostOracle;
use crate::profiler::ProfiledTemplate;
use crate::scheduler::{deficit_schedule, RoundControl};
use bayesopt::BoConfig;
use rand::rngs::StdRng;
use rand::Rng;
use sqlkit::Select;
use std::collections::HashSet;
use workload::TargetDistribution;

/// Probes drawn per mini-batch while the conforming region is still
/// unknown: small, to keep the surrogate's ask/tell feedback loop tight.
pub(crate) const BATCH_EXPLORE: usize = 4;
/// Probes per mini-batch once conforming points exist (the harvest phase
/// perturbs known-good points, so stale feedback costs nothing).
pub(crate) const BATCH_HARVEST: usize = 32;

/// One generated query with its measured cost.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedQuery {
    pub sql: String,
    pub cost: f64,
}

/// Algorithm 3 configuration; defaults are the paper's constants.
#[derive(Debug, Clone, PartialEq)]
pub struct BoSearchConfig {
    /// BO budget per (interval, template) run: `budget_factor · Δ*`.
    pub budget_factor: f64,
    /// Hard cap on one run's budget (keeps worst-case bounded).
    pub max_run_budget: usize,
    /// Floor on one run's budget: `5Δ*` is too small to steer a surrogate
    /// when the remaining deficit is a handful of queries.
    pub min_run_budget: usize,
    /// Weighted-sample size of candidate templates per interval (10).
    pub weighted_sample: usize,
    /// Utility-ratio cutoff below which a combination is bad (0.05).
    pub utility_cutoff: f64,
    /// Consecutive fruitless rounds before an interval is skipped (5).
    pub failure_cap: u32,
    /// Remaining-space requirement: `R[T] ≥ space_factor · Δ*` (5).
    pub space_factor: f64,
    /// Minimum variety factor to pass the diversity filter.
    pub min_variety: f64,
    /// Underlying optimizer settings.
    pub bo: BoConfig,
    /// Max concurrent interval tasks per scheduler round. `0` (default)
    /// scales the round width with the deficit profile — how many
    /// intervals still need comparable work — never with the thread
    /// count, so output is independent of the hardware. The CLIs expose
    /// this as `--bo-rounds-concurrency`.
    pub rounds_concurrency: usize,
    /// `false` replaces the whole directed search with uniform random
    /// sampling over (template, predicate values) — the paper's
    /// "Naive-Search" ablation, which "cannot effectively select templates
    /// for different cost ranges or search for suitable predicate values".
    pub use_bo: bool,
    /// Evaluation budget of the naive ablation, as a multiple of the
    /// target query count.
    pub naive_budget_factor: f64,
}

impl Default for BoSearchConfig {
    fn default() -> Self {
        BoSearchConfig {
            budget_factor: 5.0,
            max_run_budget: 400,
            min_run_budget: 30,
            weighted_sample: 10,
            utility_cutoff: 0.05,
            failure_cap: 5,
            space_factor: 5.0,
            min_variety: 0.02,
            bo: BoConfig { init_samples: 8, candidates: 200, ..Default::default() },
            rounds_concurrency: 0,
            use_bo: true,
            naive_budget_factor: 25.0,
        }
    }
}

/// Result of the search.
#[derive(Debug, Clone, Default)]
pub struct SearchResult {
    /// Accepted queries (their costs conform to the target distribution).
    pub queries: Vec<GeneratedQuery>,
    /// Final per-interval counts `d`.
    pub distribution: Vec<f64>,
    /// Intervals given up on.
    pub skipped: Vec<usize>,
    /// Cost-oracle evaluations spent by the search phase.
    pub evaluations: usize,
}

/// Eq. (5): distance of a cost to the target interval, 0 inside.
pub fn interval_objective(cost: f64, lo: f64, hi: f64) -> f64 {
    if cost >= lo && cost <= hi {
        return 0.0;
    }
    let ratio = |a: f64, b: f64| -> f64 {
        if a <= 0.0 || b <= 0.0 {
            0.0
        } else {
            (a / b).min(b / a)
        }
    };
    1.0 - ratio(cost, lo).max(ratio(cost, hi))
}

/// State shared across the whole search.
pub(crate) struct SearchState {
    pub(crate) d: Vec<f64>,
    pub(crate) queries: Vec<GeneratedQuery>,
    /// SQL texts already accepted (a workload wants distinct queries, not
    /// one query repeated — note that different unit points can decode to
    /// the same integer predicate values).
    pub(crate) seen: HashSet<String>,
}

impl SearchState {
    /// Try to accept a query: its interval must have a deficit and its
    /// SQL text must be new.
    pub(crate) fn try_accept(
        &mut self,
        sql: String,
        cost: f64,
        target: &TargetDistribution,
    ) -> bool {
        let Some(j) = target.intervals.interval_of(cost) else { return false };
        if self.d[j] >= target.counts[j] {
            return false;
        }
        if self.seen.contains(&sql) {
            return false;
        }
        self.seen.insert(sql.clone());
        self.d[j] += 1.0;
        self.queries.push(GeneratedQuery { sql, cost });
        true
    }
}

/// Seed a fresh [`SearchState`] with profiling-phase queries that already
/// conform (the generator "outputs the SQL queries whose … costs
/// conform"). Touches no RNG; pure function of the template histories.
pub(crate) fn seed_search_state(
    templates: &[ProfiledTemplate],
    target: &TargetDistribution,
) -> SearchState {
    let mut state = SearchState {
        d: vec![0.0; target.intervals.count],
        queries: Vec::new(),
        seen: HashSet::new(),
    };
    for template in templates.iter() {
        for eval in &template.evaluations {
            let bindings = template.space.decode(&eval.point);
            if let Ok(query) = template.template.instantiate(&bindings) {
                state.try_accept(query.to_string(), eval.value, target);
            }
        }
    }
    state
}

/// `SQLBARBER_TRACE` dump of the template pool and the seeded deficits.
pub(crate) fn trace_pool(templates: &[ProfiledTemplate], state: &SearchState) {
    if std::env::var("SQLBARBER_TRACE").is_ok() {
        for (idx, t) in templates.iter().enumerate() {
            let mn = t.costs.iter().cloned().fold(f64::INFINITY, f64::min);
            if mn < 600.0 {
                eprintln!(
                    "[pool] T{idx} min={mn:.0} space={:.1e} var={:.2} sql={}",
                    t.remaining_space(),
                    t.variety(),
                    t.template.sql().chars().take(90).collect::<String>()
                );
            }
        }
        eprintln!("[pool] seeded d = {:?}", state.d);
    }
}

/// Run Algorithm 3. `on_progress` is invoked with the current distribution
/// after every optimization run (the hook the distance-over-time plots are
/// recorded through).
///
/// The driver calls the pieces ([`seed_search_state`],
/// [`deficit_schedule`], [`naive_random_search`]) directly so it can
/// interleave checkpoints; this entry keeps the original one-call API —
/// and, critically, the original RNG stream: the master seed is drawn
/// from `rng` *after* the (RNG-free) seeding pass and *only* on the BO
/// path, exactly where the scheduler used to draw it. The naive ablation
/// never draws a master seed; hoisting the draw unconditionally would
/// shift its probe stream.
pub fn bo_predicate_search(
    oracle: &CostOracle,
    templates: &mut [ProfiledTemplate],
    target: &TargetDistribution,
    cost_type: CostType,
    config: &BoSearchConfig,
    rng: &mut StdRng,
    mut on_progress: impl FnMut(&[f64]),
) -> SearchResult {
    let state = seed_search_state(templates, target);
    on_progress(&state.d);
    trace_pool(templates, &state);

    if !config.use_bo {
        return naive_random_search(
            oracle, templates, target, cost_type, config, rng, state, on_progress,
        );
    }

    // The directed search itself — interval selection, template claiming,
    // concurrent (interval, template) runs, and the deterministic round
    // merges — lives in the deficit scheduler.
    let search_seed: u64 = rng.gen();
    deficit_schedule(
        oracle,
        templates,
        target,
        cost_type,
        config,
        search_seed,
        None,
        state,
        on_progress,
        |_, _| RoundControl::Continue,
    )
}

/// The "Naive-Search" ablation: undirected uniform sampling of
/// (template, predicate values) pairs until the budget runs out or the
/// distribution is matched. Deliberately stays on the render-then-cost
/// path (its batches mix templates, and the ablation measures the naive
/// strategy, not the prepared fast path). Without closeness-guided template selection
/// and without a surrogate, the last queries of sparsely-hit intervals
/// arrive at the uniform hit rate — which is why the paper observes this
/// variant "fails to reduce the distance to zero".
#[allow(clippy::too_many_arguments)]
pub(crate) fn naive_random_search(
    oracle: &CostOracle,
    templates: &mut [ProfiledTemplate],
    target: &TargetDistribution,
    cost_type: CostType,
    config: &BoSearchConfig,
    rng: &mut StdRng,
    mut state: SearchState,
    mut on_progress: impl FnMut(&[f64]),
) -> SearchResult {
    let total = target.total();
    let budget = (config.naive_budget_factor * total).ceil() as usize;
    let n_templates = templates.len();
    let mut evaluations = 0usize;
    let mut drawn = 0usize;
    'runs: while drawn < budget {
        let remaining: f64 = (0..target.intervals.count)
            .map(|j| (target.counts[j] - state.d[j]).max(0.0))
            .sum();
        if remaining <= 0.0 {
            break;
        }
        // Draw a fixed-size mini-batch serially, cost it in parallel,
        // process in order (same structure as `optimize_template`).
        let batch_size = BATCH_HARVEST.min(budget - drawn);
        let mut picks: Vec<usize> = Vec::with_capacity(batch_size);
        let mut probes: Vec<(String, Select)> = Vec::with_capacity(batch_size);
        for _ in 0..batch_size {
            drawn += 1;
            let template_idx = rng.gen_range(0..n_templates);
            let template = &templates[template_idx];
            let point = template.space.space.sample_unit(rng);
            let bindings = template.space.decode(&point);
            let Ok(query) = template.template.instantiate(&bindings) else { continue };
            picks.push(template_idx);
            probes.push((query.to_string(), query));
        }
        let costs = oracle.cost_batch(&probes, cost_type);
        for ((template_idx, (sql, _)), cost) in
            picks.into_iter().zip(probes).zip(costs)
        {
            let Ok(cost) = cost else { continue };
            evaluations += 1;
            let template = &mut templates[template_idx];
            template.consumed += 1.0;
            template.costs.push(cost);
            state.try_accept(sql, cost, target);
            if evaluations.is_multiple_of(256) {
                on_progress(&state.d);
            }
            let remaining: f64 = (0..target.intervals.count)
                .map(|j| (target.counts[j] - state.d[j]).max(0.0))
                .sum();
            if remaining <= 0.0 {
                break 'runs;
            }
        }
    }
    on_progress(&state.d);
    SearchResult {
        queries: state.queries,
        distribution: state.d,
        skipped: Vec::new(),
        evaluations,
    }
}

/// Weighted sampling without replacement, proportional to closeness.
pub(crate) fn weighted_sample(
    candidates: &mut Vec<(usize, f64)>,
    k: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let mut picked = Vec::with_capacity(k.min(candidates.len()));
    while picked.len() < k && !candidates.is_empty() {
        let total: f64 = candidates.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            picked.extend(candidates.drain(..).map(|(idx, _)| idx).take(k - picked.len()));
            break;
        }
        let mut roll = rng.gen::<f64>() * total;
        let mut chosen = candidates.len() - 1;
        for (pos, (_, weight)) in candidates.iter().enumerate() {
            roll -= weight;
            if roll <= 0.0 {
                chosen = pos;
                break;
            }
        }
        picked.push(candidates.remove(chosen).0);
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::profile_template;
    use rand::SeedableRng;
    use sqlkit::parse_template;
    use std::collections::HashMap;
    use workload::CostIntervals;

    #[test]
    fn objective_is_zero_inside_and_grows_outside() {
        assert_eq!(interval_objective(500.0, 0.0, 1000.0), 0.0);
        assert_eq!(interval_objective(1000.0, 0.0, 1000.0), 0.0);
        let near = interval_objective(1100.0, 0.0, 1000.0);
        let far = interval_objective(9000.0, 0.0, 1000.0);
        assert!(near > 0.0 && far > near, "near {near} far {far}");
        // degenerate lo = 0 does not divide by zero
        assert!(interval_objective(0.5, 0.0, 1000.0) == 0.0);
    }

    #[test]
    fn search_fills_a_small_uniform_target() {
        let db = minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny());
        let oracle = CostOracle::new(&db, 1);
        let mut rng = StdRng::seed_from_u64(8);
        let mut templates: Vec<ProfiledTemplate> = [
            "SELECT l.l_orderkey FROM lineitem AS l WHERE l.l_extendedprice > {p_1}",
            "SELECT l.l_orderkey FROM lineitem AS l \
             WHERE l.l_extendedprice BETWEEN {p_1} AND {p_2}",
        ]
        .iter()
        .map(|sql| {
            profile_template(
                &oracle,
                parse_template(sql).unwrap(),
                CostType::Cardinality,
                15,
                &mut rng,
            )
        })
        .collect();
        let target = workload::TargetDistribution::uniform(
            CostIntervals::new(0.0, 6000.0, 6),
            60,
        );
        let result = bo_predicate_search(
            &oracle,
            &mut templates,
            &target,
            CostType::Cardinality,
            &BoSearchConfig::default(),
            &mut rng,
            |_| {},
        );
        let filled: f64 = result.distribution.iter().sum();
        assert!(
            filled >= 54.0,
            "filled {filled}/60; d = {:?}, skipped {:?}",
            result.distribution,
            result.skipped
        );
        assert_eq!(result.queries.len(), filled as usize);
        // accepted queries actually lie in their intervals and are unique
        let mut sqls: Vec<&str> = result.queries.iter().map(|q| q.sql.as_str()).collect();
        let before = sqls.len();
        sqls.sort_unstable();
        sqls.dedup();
        assert_eq!(sqls.len(), before, "duplicate queries accepted");
    }

    #[test]
    fn random_search_ablation_is_worse_or_equal() {
        let db = minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny());
        let run = |use_bo: bool| {
            let oracle = CostOracle::new(&db, 1);
            let mut rng = StdRng::seed_from_u64(42);
            let mut templates = vec![profile_template(
                &oracle,
                parse_template(
                    "SELECT l.l_orderkey FROM lineitem AS l WHERE l.l_extendedprice > {p_1} \
                     AND l.l_quantity > {p_2}",
                )
                .unwrap(),
                CostType::Cardinality,
                10,
                &mut rng,
            )];
            // Narrow target: needs directed search.
            let target = workload::TargetDistribution::uniform(
                CostIntervals::new(4000.0, 4600.0, 2),
                30,
            );
            let mut evaluations = 0;
            let config = BoSearchConfig {
                use_bo,
                max_run_budget: 60,
                ..Default::default()
            };
            let result = bo_predicate_search(
                &oracle,
                &mut templates,
                &target,
                CostType::Cardinality,
                &config,
                &mut rng,
                |_| evaluations += 1,
            );
            (result.distribution.iter().sum::<f64>(), templates[0].consumed)
        };
        let (bo_filled, bo_consumed) = run(true);
        let (random_filled, random_consumed) = run(false);
        // BO should fill at least as much, or do it with less effort.
        assert!(
            bo_filled > random_filled
                || (bo_filled == random_filled && bo_consumed <= random_consumed),
            "bo {bo_filled}@{bo_consumed} vs random {random_filled}@{random_consumed}"
        );
    }

    #[test]
    fn impossible_intervals_get_skipped_not_looped() {
        let db = minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny());
        let oracle = CostOracle::new(&db, 1);
        let mut rng = StdRng::seed_from_u64(5);
        // nation has 25 rows: cardinality can never reach [5000, 10000].
        let mut templates = vec![profile_template(
            &oracle,
            parse_template("SELECT * FROM nation WHERE nation.n_nationkey > {p_1}").unwrap(),
            CostType::Cardinality,
            10,
            &mut rng,
        )];
        let target = workload::TargetDistribution::uniform(
            CostIntervals::new(5000.0, 10_000.0, 2),
            20,
        );
        let result = bo_predicate_search(
            &oracle,
            &mut templates,
            &target,
            CostType::Cardinality,
            &BoSearchConfig::default(),
            &mut rng,
            |_| {},
        );
        assert_eq!(result.distribution.iter().sum::<f64>(), 0.0);
        assert_eq!(result.skipped.len(), 2, "both intervals must be skipped");
    }

    #[test]
    fn weighted_sampling_prefers_heavy_candidates() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut firsts = HashMap::new();
        for _ in 0..500 {
            let mut candidates = vec![(0usize, 0.01), (1usize, 1.0), (2usize, 0.01)];
            let picked = weighted_sample(&mut candidates, 1, &mut rng);
            *firsts.entry(picked[0]).or_insert(0usize) += 1;
        }
        assert!(firsts[&1] > 400, "heavy candidate picked {} times", firsts[&1]);
    }
}
