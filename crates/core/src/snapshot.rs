//! Crash-safe pipeline snapshots: a versioned, CRC-guarded binary codec
//! plus atomic on-disk checkpoint storage with generation fallback.
//!
//! A [`Snapshot`] captures everything a resumed run needs to continue
//! **bit-identically**: the driver RNG's xoshiro256++ state words, the
//! whole LLM stack's [`ModelState`], the report accumulators written so
//! far, the template pool (seed SQL before profiling, full
//! [`ProfiledState`]s after), the cost oracle's memo/interner/registry
//! contents and counters, and a [`PhaseState`] marker saying exactly
//! where in the pipeline the snapshot was taken — including mid-search
//! scheduler bookkeeping ([`SchedState`]).
//!
//! ## File format
//!
//! ```text
//! magic "SQBS" | version u32 | payload_len u64 | crc32(payload) u32 | payload
//! ```
//!
//! All integers little-endian; floats stored as IEEE-754 bit patterns so
//! NaN payloads and signed zeros round-trip exactly. The codec is total:
//! [`Snapshot::decode`] returns a typed [`SnapshotError`] on any input —
//! truncated, bit-flipped, or adversarial — and never panics or
//! overallocates (every length field is validated against the remaining
//! input before allocation).
//!
//! ## Durability & fallback
//!
//! [`CheckpointDir::store`] writes `snapshot-NNNNNN.bin` via temp file +
//! `fsync` + atomic rename (plus a best-effort directory fsync), so a
//! crash mid-write can never clobber the previous good snapshot. The two
//! most recent generations are kept; [`CheckpointDir::load_latest`]
//! scans generations newest-first and falls back past corrupt files
//! (logging each rejection) — a torn or bit-flipped latest snapshot
//! degrades to the previous boundary, never to a panic.

use crate::cost::CostType;
use llm::{BreakerSnapshot, ModelState, ResilientState, SyntheticState, TransportState};
use llm::{InjectedFaults, ResilienceStats, TokenUsage};
use minidb::DbError;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Snapshot file magic.
pub const MAGIC: [u8; 4] = *b"SQBS";
/// Codec version; bumped on any layout change.
pub const VERSION: u32 = 1;
/// Header length in bytes: magic + version + payload_len + crc32.
pub const HEADER_LEN: usize = 4 + 4 + 8 + 4;
/// Maximum model-stack nesting the decoder accepts (the pipeline stacks
/// three layers; the bound keeps hostile input from recursing the stack).
const MAX_MODEL_DEPTH: usize = 8;
/// Snapshot generations kept on disk (current + fallback).
const KEEP_GENERATIONS: u64 = 2;

/// Typed decode/storage failure. Total: every malformed input maps here,
/// never to a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem operation failed.
    Io(String),
    /// Input ended before the structure it promised.
    Truncated,
    /// First four bytes are not the snapshot magic.
    BadMagic,
    /// Unknown codec version.
    BadVersion(u32),
    /// Payload checksum mismatch (torn write or bit flip).
    Crc {
        /// Checksum recorded in the header.
        expected: u32,
        /// Checksum of the payload actually read.
        actual: u32,
    },
    /// Structurally invalid payload (bad tag, non-UTF-8 string, ...).
    Malformed(String),
    /// The checkpoint directory holds no snapshot at all.
    NoSnapshot,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(detail) => write!(f, "snapshot I/O error: {detail}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {VERSION})")
            }
            SnapshotError::Crc { expected, actual } => write!(
                f,
                "snapshot checksum mismatch (header {expected:#010x}, payload {actual:#010x})"
            ),
            SnapshotError::Malformed(detail) => write!(f, "malformed snapshot: {detail}"),
            SnapshotError::NoSnapshot => write!(f, "no snapshot found"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the polynomial every
/// `cksum`/zlib implementation agrees on, computed bytewise without a
/// table (snapshots are small; clarity wins).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// State types
// ---------------------------------------------------------------------------

/// Complete pipeline state at one checkpoint boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// FNV-1a fingerprint of (config, target, cost type); resume refuses
    /// a snapshot taken under different settings.
    pub fingerprint: u64,
    /// Driver RNG state words (xoshiro256++), captured at the boundary.
    pub rng: [u64; 4],
    /// Full LLM-stack state (every layer's RNG, counters, clock).
    pub llm: ModelState,
    /// Report fields accumulated before the boundary.
    pub acc: ReportAcc,
    /// Template pool: seed SQL before profiling, profiled states after.
    pub pool: TemplatePool,
    /// Cost-oracle memo/registry/counter state (absent before profiling,
    /// when the oracle has not been consulted yet).
    pub oracle: Option<OracleState>,
    /// Where in the pipeline the snapshot was taken.
    pub phase: PhaseState,
}

/// Pipeline position marker.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseState {
    /// Algorithm 1 finished; profiling next.
    AfterTemplates,
    /// Profiling finished; initial refinement next.
    AfterProfiling,
    /// Refinement preceding search round `round` (1-based) finished.
    AfterRefine {
        /// The search round this refinement feeds.
        round: u64,
    },
    /// Inside search round `round`, between scheduler rounds.
    MidSearch {
        /// Outer refine→search round (1-based).
        round: u64,
        /// Scheduler bookkeeping to resume from.
        sched: SchedState,
    },
    /// Search round `round` finished with `result`; the retry decision
    /// (and, on the final round, amplification) comes next.
    AfterSearch {
        /// Outer refine→search round (1-based).
        round: u64,
        /// The finished round's search result.
        result: StoredResult,
    },
}

impl PhaseState {
    /// Stable name, used by the kill switch and log lines.
    pub fn name(&self) -> &'static str {
        match self {
            PhaseState::AfterTemplates => "after-templates",
            PhaseState::AfterProfiling => "after-profiling",
            PhaseState::AfterRefine { .. } => "after-refine",
            PhaseState::MidSearch { .. } => "mid-search",
            PhaseState::AfterSearch { .. } => "after-search",
        }
    }
}

/// Deficit-scheduler bookkeeping at a round boundary. `seen` is not
/// stored: it is exactly the SQL set of `queries` (the scheduler's
/// `try_accept` is the only inserter) and is rebuilt on resume.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedState {
    /// The search's master seed (already drawn from the driver RNG).
    pub search_seed: u64,
    /// First scheduler round the resumed search runs.
    pub next_round: u64,
    /// Bad `(interval, template)` combinations (Eq. 6).
    pub bad: Vec<(u64, u64)>,
    /// Skipped intervals.
    pub skip: Vec<u64>,
    /// Consecutive fruitless rounds per interval.
    pub failures: Vec<(u64, u32)>,
    /// Oracle evaluations spent by the search so far.
    pub evaluations: u64,
    /// Per-interval accepted counts `d`.
    pub d: Vec<f64>,
    /// Accepted queries so far, in acceptance order.
    pub queries: Vec<(String, f64)>,
}

/// A finished search round's [`crate::bo_search::SearchResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct StoredResult {
    /// Accepted queries in acceptance order.
    pub queries: Vec<(String, f64)>,
    /// Final per-interval counts.
    pub distribution: Vec<f64>,
    /// Intervals given up on.
    pub skipped: Vec<u64>,
    /// Oracle evaluations spent.
    pub evaluations: u64,
}

/// The template pool at a boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplatePool {
    /// Seed templates (printed SQL), before profiling.
    Seeds(Vec<String>),
    /// Profiled templates with their full evaluation history.
    Profiled(Vec<ProfiledState>),
}

/// Serialized [`crate::profiler::ProfiledTemplate`]: the template's
/// printed SQL plus its measurement history. The placeholder space is
/// rebuilt from the database on resume (it is a pure function of
/// template + schema).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledState {
    /// Template SQL with `{p_i}` placeholders.
    pub sql: String,
    /// Observed costs.
    pub costs: Vec<f64>,
    /// `(unit point, cost)` evaluation history — this is also the BO
    /// warm-start training data, which is why the surrogate forest itself
    /// never needs serializing.
    pub evaluations: Vec<(Vec<f64>, f64)>,
    /// Evaluation budget consumed.
    pub consumed: f64,
}

/// Report fields the pipeline has already committed by the boundary;
/// everything else in the final report is recomputed by the remainder of
/// the run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReportAcc {
    /// Algorithm 1 spec-correct counts per attempt.
    pub spec_correct: Vec<u64>,
    /// Algorithm 1 syntax-correct counts per attempt.
    pub syntax_correct: Vec<u64>,
    /// Algorithm 1 batch size.
    pub rewrite_total: u64,
    /// Template/specification alignment accuracy.
    pub alignment_accuracy: f64,
    /// Seed templates produced by Algorithm 1.
    pub n_seed_templates: u64,
    /// Refined templates accepted so far.
    pub n_refined_templates: u64,
    /// Degradation counters: llm_failures, malformed_responses,
    /// abandoned_specs, abandoned_intervals.
    pub degradation: [u64; 4],
}

/// Hashable stand-in for a bound value inside a prepared-probe memo key
/// (mirrors the oracle's internal representation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKeySnap {
    /// Integer binding.
    Int(i64),
    /// Float binding, keyed by bit pattern.
    Float(u64),
    /// String binding, as an interner id (index into
    /// [`OracleState::interner`]).
    Str(u32),
    /// Boolean binding.
    Bool(bool),
    /// NULL binding.
    Null,
}

/// One rendered-text memo entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TextEntry {
    /// Cost metric of the probe.
    pub cost_type: CostType,
    /// Rendered statement text.
    pub sql: String,
    /// Memoized result.
    pub value: Result<f64, DbError>,
    /// Second-chance reference bit.
    pub referenced: bool,
}

/// One prepared-probe memo entry.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedEntry {
    /// Oracle-assigned template id.
    pub template_id: u64,
    /// Cost metric of the probe.
    pub cost_type: CostType,
    /// Binding vector in placeholder order (`None` = unbound slot).
    pub key: Vec<Option<ValueKeySnap>>,
    /// Memoized result.
    pub value: Result<f64, DbError>,
    /// Second-chance reference bit.
    pub referenced: bool,
}

/// One bounded memo shard, entries in clock-queue order (front first) so
/// future second-chance evictions replay identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState<E> {
    /// Shard capacity.
    pub capacity: u64,
    /// Entries already evicted from this shard.
    pub evicted: u64,
    /// Live entries in queue order.
    pub entries: Vec<E>,
}

/// The oracle's atomic counters (raw, pre-derivation — `stats()` derives
/// physical/hit counts from these plus the shard contents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleCounters {
    /// Logical probes.
    pub logical: u64,
    /// Unmemoized (execution-time) probes.
    pub unmemoized: u64,
    /// Prepared-path logical probes.
    pub prepared_logical: u64,
    /// Prepared-path unmemoized probes.
    pub prepared_unmemoized: u64,
    /// Scheduler rounds.
    pub scheduler_rounds: u64,
    /// Scheduler tasks.
    pub scheduler_tasks: u64,
    /// Peak tasks in one round.
    pub scheduler_peak_tasks: u64,
    /// Round-barrier overadmissions.
    pub scheduler_overadmissions: u64,
}

/// Complete serializable state of a [`crate::oracle::CostOracle`]:
/// restoring it reproduces every future memo hit, eviction, and derived
/// counter exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleState {
    /// String-intern table; index = interned id.
    pub interner: Vec<String>,
    /// Prepared-template registry; index = template id, value = SQL
    /// (plans are rebuilt by re-preparing on resume).
    pub templates: Vec<String>,
    /// Rendered-text memo shards, by shard index.
    pub text_shards: Vec<ShardState<TextEntry>>,
    /// Prepared-probe memo shards, by shard index.
    pub prepared_shards: Vec<ShardState<PreparedEntry>>,
    /// Raw atomic counters.
    pub counters: OracleCounters,
}

// ---------------------------------------------------------------------------
// Encoder / decoder primitives
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> Dec<'a> {
        Dec { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(self.u64()? as i64)
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Malformed(format!("bool byte {other}"))),
        }
    }

    /// A length prefix, validated against the remaining input: a list of
    /// `len` elements each at least `elem_min` bytes wide cannot be
    /// longer than what is left, so hostile lengths fail before any
    /// allocation happens.
    fn len(&mut self, elem_min: usize) -> Result<usize, SnapshotError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| SnapshotError::Truncated)?;
        if len.checked_mul(elem_min.max(1)).is_none_or(|need| need > self.remaining()) {
            return Err(SnapshotError::Truncated);
        }
        Ok(len)
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed("non-UTF-8 string".into()))
    }
}

// ---------------------------------------------------------------------------
// Field codecs
// ---------------------------------------------------------------------------

fn enc_rng(enc: &mut Enc, words: &[u64; 4]) {
    for &w in words {
        enc.u64(w);
    }
}

fn dec_rng(dec: &mut Dec) -> Result<[u64; 4], SnapshotError> {
    Ok([dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?])
}

fn enc_usage(enc: &mut Enc, usage: &TokenUsage) {
    enc.u64(usage.input_tokens);
    enc.u64(usage.output_tokens);
    enc.u64(usage.requests);
}

fn dec_usage(dec: &mut Dec) -> Result<TokenUsage, SnapshotError> {
    Ok(TokenUsage {
        input_tokens: dec.u64()?,
        output_tokens: dec.u64()?,
        requests: dec.u64()?,
    })
}

fn enc_model(enc: &mut Enc, state: &ModelState) {
    match state {
        ModelState::Synthetic(s) => {
            enc.u8(0);
            enc_rng(enc, &s.rng);
            enc_usage(enc, &s.usage);
            enc.usize(s.attempts.len());
            for &(spec, attempts) in &s.attempts {
                enc.u32(spec);
                enc.u32(attempts);
            }
        }
        ModelState::Transport { layer, inner } => {
            enc.u8(1);
            enc_rng(enc, &layer.rng);
            enc.u32(layer.remaining_burst);
            enc.u64(layer.injected.timeouts);
            enc.u64(layer.injected.rate_limits);
            enc.u64(layer.injected.truncations);
            enc.u64(layer.injected.server_errors);
            enc.u64(layer.injected.burst_failures);
            enc.u64(layer.injected.bursts);
            enc_usage(enc, &layer.wasted);
            enc_model(enc, inner);
        }
        ModelState::Resilient { layer, inner } => {
            enc.u8(2);
            enc_rng(enc, &layer.rng);
            enc.u64(layer.now_ms);
            match layer.breaker {
                BreakerSnapshot::Closed { consecutive_failures } => {
                    enc.u8(0);
                    enc.u32(consecutive_failures);
                }
                BreakerSnapshot::Open { until_ms } => {
                    enc.u8(1);
                    enc.u64(until_ms);
                }
                BreakerSnapshot::HalfOpen => enc.u8(2),
            }
            enc.u64(layer.retries_left);
            let s = &layer.stats;
            for v in [
                s.calls,
                s.attempts,
                s.failures,
                s.retries,
                s.recoveries,
                s.giveups,
                s.backoff_ms,
                s.breaker_trips,
                s.breaker_probes,
                s.circuit_rejections,
                s.budget_exhausted,
            ] {
                enc.u64(v);
            }
            enc_model(enc, inner);
        }
    }
}

fn dec_model(dec: &mut Dec, depth: usize) -> Result<ModelState, SnapshotError> {
    if depth > MAX_MODEL_DEPTH {
        return Err(SnapshotError::Malformed("model stack too deep".into()));
    }
    match dec.u8()? {
        0 => {
            let rng = dec_rng(dec)?;
            let usage = dec_usage(dec)?;
            let n = dec.len(8)?;
            let mut attempts = Vec::with_capacity(n);
            for _ in 0..n {
                attempts.push((dec.u32()?, dec.u32()?));
            }
            Ok(ModelState::Synthetic(SyntheticState { rng, usage, attempts }))
        }
        1 => {
            let rng = dec_rng(dec)?;
            let remaining_burst = dec.u32()?;
            let injected = InjectedFaults {
                timeouts: dec.u64()?,
                rate_limits: dec.u64()?,
                truncations: dec.u64()?,
                server_errors: dec.u64()?,
                burst_failures: dec.u64()?,
                bursts: dec.u64()?,
            };
            let wasted = dec_usage(dec)?;
            let inner = Box::new(dec_model(dec, depth + 1)?);
            Ok(ModelState::Transport {
                layer: TransportState { rng, remaining_burst, injected, wasted },
                inner,
            })
        }
        2 => {
            let rng = dec_rng(dec)?;
            let now_ms = dec.u64()?;
            let breaker = match dec.u8()? {
                0 => BreakerSnapshot::Closed { consecutive_failures: dec.u32()? },
                1 => BreakerSnapshot::Open { until_ms: dec.u64()? },
                2 => BreakerSnapshot::HalfOpen,
                other => {
                    return Err(SnapshotError::Malformed(format!("breaker tag {other}")))
                }
            };
            let retries_left = dec.u64()?;
            let stats = ResilienceStats {
                calls: dec.u64()?,
                attempts: dec.u64()?,
                failures: dec.u64()?,
                retries: dec.u64()?,
                recoveries: dec.u64()?,
                giveups: dec.u64()?,
                backoff_ms: dec.u64()?,
                breaker_trips: dec.u64()?,
                breaker_probes: dec.u64()?,
                circuit_rejections: dec.u64()?,
                budget_exhausted: dec.u64()?,
            };
            let inner = Box::new(dec_model(dec, depth + 1)?);
            Ok(ModelState::Resilient {
                layer: ResilientState { rng, now_ms, breaker, retries_left, stats },
                inner,
            })
        }
        other => Err(SnapshotError::Malformed(format!("model tag {other}"))),
    }
}

fn enc_cost_type(enc: &mut Enc, ct: CostType) {
    enc.u8(match ct {
        CostType::Cardinality => 0,
        CostType::PlanCost => 1,
        CostType::ActualCardinality => 2,
        CostType::ExecutionTimeMicros => 3,
    });
}

fn dec_cost_type(dec: &mut Dec) -> Result<CostType, SnapshotError> {
    Ok(match dec.u8()? {
        0 => CostType::Cardinality,
        1 => CostType::PlanCost,
        2 => CostType::ActualCardinality,
        3 => CostType::ExecutionTimeMicros,
        other => return Err(SnapshotError::Malformed(format!("cost-type tag {other}"))),
    })
}

fn enc_db_error(enc: &mut Enc, e: &DbError) {
    let (tag, text): (u8, &str) = match e {
        DbError::UnknownTable(s) => (0, s),
        DbError::UnknownColumn(s) => (1, s),
        DbError::AmbiguousColumn(s) => (2, s),
        DbError::DuplicateBinding(s) => (3, s),
        DbError::TypeMismatch(s) => (4, s),
        DbError::UnboundPlaceholder(id) => {
            enc.u8(5);
            enc.u32(*id);
            return;
        }
        DbError::Unsupported(s) => (6, s),
        DbError::Grouping(s) => (7, s),
        DbError::Arithmetic(s) => (8, s),
    };
    enc.u8(tag);
    enc.str(text);
}

fn dec_db_error(dec: &mut Dec) -> Result<DbError, SnapshotError> {
    let tag = dec.u8()?;
    if tag == 5 {
        return Ok(DbError::UnboundPlaceholder(dec.u32()?));
    }
    let text = dec.str()?;
    Ok(match tag {
        0 => DbError::UnknownTable(text),
        1 => DbError::UnknownColumn(text),
        2 => DbError::AmbiguousColumn(text),
        3 => DbError::DuplicateBinding(text),
        4 => DbError::TypeMismatch(text),
        6 => DbError::Unsupported(text),
        7 => DbError::Grouping(text),
        8 => DbError::Arithmetic(text),
        other => return Err(SnapshotError::Malformed(format!("db-error tag {other}"))),
    })
}

fn enc_cost_result(enc: &mut Enc, r: &Result<f64, DbError>) {
    match r {
        Ok(v) => {
            enc.u8(0);
            enc.f64(*v);
        }
        Err(e) => {
            enc.u8(1);
            enc_db_error(enc, e);
        }
    }
}

fn dec_cost_result(dec: &mut Dec) -> Result<Result<f64, DbError>, SnapshotError> {
    match dec.u8()? {
        0 => Ok(Ok(dec.f64()?)),
        1 => Ok(Err(dec_db_error(dec)?)),
        other => Err(SnapshotError::Malformed(format!("result tag {other}"))),
    }
}

fn enc_value_key(enc: &mut Enc, key: &Option<ValueKeySnap>) {
    match key {
        None => enc.u8(0),
        Some(ValueKeySnap::Int(v)) => {
            enc.u8(1);
            enc.i64(*v);
        }
        Some(ValueKeySnap::Float(bits)) => {
            enc.u8(2);
            enc.u64(*bits);
        }
        Some(ValueKeySnap::Str(id)) => {
            enc.u8(3);
            enc.u32(*id);
        }
        Some(ValueKeySnap::Bool(b)) => {
            enc.u8(4);
            enc.bool(*b);
        }
        Some(ValueKeySnap::Null) => enc.u8(5),
    }
}

fn dec_value_key(dec: &mut Dec) -> Result<Option<ValueKeySnap>, SnapshotError> {
    Ok(match dec.u8()? {
        0 => None,
        1 => Some(ValueKeySnap::Int(dec.i64()?)),
        2 => Some(ValueKeySnap::Float(dec.u64()?)),
        3 => Some(ValueKeySnap::Str(dec.u32()?)),
        4 => Some(ValueKeySnap::Bool(dec.bool()?)),
        5 => Some(ValueKeySnap::Null),
        other => return Err(SnapshotError::Malformed(format!("value-key tag {other}"))),
    })
}

fn enc_str_vec(enc: &mut Enc, items: &[String]) {
    enc.usize(items.len());
    for s in items {
        enc.str(s);
    }
}

fn dec_str_vec(dec: &mut Dec) -> Result<Vec<String>, SnapshotError> {
    let n = dec.len(8)?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(dec.str()?);
    }
    Ok(items)
}

fn enc_f64_vec(enc: &mut Enc, items: &[f64]) {
    enc.usize(items.len());
    for &v in items {
        enc.f64(v);
    }
}

fn dec_f64_vec(dec: &mut Dec) -> Result<Vec<f64>, SnapshotError> {
    let n = dec.len(8)?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(dec.f64()?);
    }
    Ok(items)
}

fn enc_u64_vec(enc: &mut Enc, items: &[u64]) {
    enc.usize(items.len());
    for &v in items {
        enc.u64(v);
    }
}

fn dec_u64_vec(dec: &mut Dec) -> Result<Vec<u64>, SnapshotError> {
    let n = dec.len(8)?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(dec.u64()?);
    }
    Ok(items)
}

fn enc_queries(enc: &mut Enc, queries: &[(String, f64)]) {
    enc.usize(queries.len());
    for (sql, cost) in queries {
        enc.str(sql);
        enc.f64(*cost);
    }
}

fn dec_queries(dec: &mut Dec) -> Result<Vec<(String, f64)>, SnapshotError> {
    let n = dec.len(16)?;
    let mut queries = Vec::with_capacity(n);
    for _ in 0..n {
        let sql = dec.str()?;
        queries.push((sql, dec.f64()?));
    }
    Ok(queries)
}

fn enc_sched(enc: &mut Enc, sched: &SchedState) {
    enc.u64(sched.search_seed);
    enc.u64(sched.next_round);
    enc.usize(sched.bad.len());
    for &(j, t) in &sched.bad {
        enc.u64(j);
        enc.u64(t);
    }
    enc_u64_vec(enc, &sched.skip);
    enc.usize(sched.failures.len());
    for &(j, count) in &sched.failures {
        enc.u64(j);
        enc.u32(count);
    }
    enc.u64(sched.evaluations);
    enc_f64_vec(enc, &sched.d);
    enc_queries(enc, &sched.queries);
}

fn dec_sched(dec: &mut Dec) -> Result<SchedState, SnapshotError> {
    let search_seed = dec.u64()?;
    let next_round = dec.u64()?;
    let n = dec.len(16)?;
    let mut bad = Vec::with_capacity(n);
    for _ in 0..n {
        let j = dec.u64()?;
        bad.push((j, dec.u64()?));
    }
    let skip = dec_u64_vec(dec)?;
    let n = dec.len(12)?;
    let mut failures = Vec::with_capacity(n);
    for _ in 0..n {
        let j = dec.u64()?;
        failures.push((j, dec.u32()?));
    }
    Ok(SchedState {
        search_seed,
        next_round,
        bad,
        skip,
        failures,
        evaluations: dec.u64()?,
        d: dec_f64_vec(dec)?,
        queries: dec_queries(dec)?,
    })
}

fn enc_result(enc: &mut Enc, result: &StoredResult) {
    enc_queries(enc, &result.queries);
    enc_f64_vec(enc, &result.distribution);
    enc_u64_vec(enc, &result.skipped);
    enc.u64(result.evaluations);
}

fn dec_result(dec: &mut Dec) -> Result<StoredResult, SnapshotError> {
    Ok(StoredResult {
        queries: dec_queries(dec)?,
        distribution: dec_f64_vec(dec)?,
        skipped: dec_u64_vec(dec)?,
        evaluations: dec.u64()?,
    })
}

fn enc_phase(enc: &mut Enc, phase: &PhaseState) {
    match phase {
        PhaseState::AfterTemplates => enc.u8(0),
        PhaseState::AfterProfiling => enc.u8(1),
        PhaseState::AfterRefine { round } => {
            enc.u8(2);
            enc.u64(*round);
        }
        PhaseState::MidSearch { round, sched } => {
            enc.u8(3);
            enc.u64(*round);
            enc_sched(enc, sched);
        }
        PhaseState::AfterSearch { round, result } => {
            enc.u8(4);
            enc.u64(*round);
            enc_result(enc, result);
        }
    }
}

fn dec_phase(dec: &mut Dec) -> Result<PhaseState, SnapshotError> {
    Ok(match dec.u8()? {
        0 => PhaseState::AfterTemplates,
        1 => PhaseState::AfterProfiling,
        2 => PhaseState::AfterRefine { round: dec.u64()? },
        3 => PhaseState::MidSearch { round: dec.u64()?, sched: dec_sched(dec)? },
        4 => PhaseState::AfterSearch { round: dec.u64()?, result: dec_result(dec)? },
        other => return Err(SnapshotError::Malformed(format!("phase tag {other}"))),
    })
}

fn enc_pool(enc: &mut Enc, pool: &TemplatePool) {
    match pool {
        TemplatePool::Seeds(seeds) => {
            enc.u8(0);
            enc_str_vec(enc, seeds);
        }
        TemplatePool::Profiled(states) => {
            enc.u8(1);
            enc.usize(states.len());
            for s in states {
                enc.str(&s.sql);
                enc_f64_vec(enc, &s.costs);
                enc.usize(s.evaluations.len());
                for (point, value) in &s.evaluations {
                    enc_f64_vec(enc, point);
                    enc.f64(*value);
                }
                enc.f64(s.consumed);
            }
        }
    }
}

fn dec_pool(dec: &mut Dec) -> Result<TemplatePool, SnapshotError> {
    Ok(match dec.u8()? {
        0 => TemplatePool::Seeds(dec_str_vec(dec)?),
        1 => {
            let n = dec.len(8)?;
            let mut states = Vec::with_capacity(n);
            for _ in 0..n {
                let sql = dec.str()?;
                let costs = dec_f64_vec(dec)?;
                let m = dec.len(16)?;
                let mut evaluations = Vec::with_capacity(m);
                for _ in 0..m {
                    let point = dec_f64_vec(dec)?;
                    evaluations.push((point, dec.f64()?));
                }
                states.push(ProfiledState { sql, costs, evaluations, consumed: dec.f64()? });
            }
            TemplatePool::Profiled(states)
        }
        other => return Err(SnapshotError::Malformed(format!("pool tag {other}"))),
    })
}

fn enc_acc(enc: &mut Enc, acc: &ReportAcc) {
    enc_u64_vec(enc, &acc.spec_correct);
    enc_u64_vec(enc, &acc.syntax_correct);
    enc.u64(acc.rewrite_total);
    enc.f64(acc.alignment_accuracy);
    enc.u64(acc.n_seed_templates);
    enc.u64(acc.n_refined_templates);
    for &v in &acc.degradation {
        enc.u64(v);
    }
}

fn dec_acc(dec: &mut Dec) -> Result<ReportAcc, SnapshotError> {
    Ok(ReportAcc {
        spec_correct: dec_u64_vec(dec)?,
        syntax_correct: dec_u64_vec(dec)?,
        rewrite_total: dec.u64()?,
        alignment_accuracy: dec.f64()?,
        n_seed_templates: dec.u64()?,
        n_refined_templates: dec.u64()?,
        degradation: [dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?],
    })
}

fn enc_oracle(enc: &mut Enc, oracle: &OracleState) {
    enc_str_vec(enc, &oracle.interner);
    enc_str_vec(enc, &oracle.templates);
    enc.usize(oracle.text_shards.len());
    for shard in &oracle.text_shards {
        enc.u64(shard.capacity);
        enc.u64(shard.evicted);
        enc.usize(shard.entries.len());
        for entry in &shard.entries {
            enc_cost_type(enc, entry.cost_type);
            enc.str(&entry.sql);
            enc_cost_result(enc, &entry.value);
            enc.bool(entry.referenced);
        }
    }
    enc.usize(oracle.prepared_shards.len());
    for shard in &oracle.prepared_shards {
        enc.u64(shard.capacity);
        enc.u64(shard.evicted);
        enc.usize(shard.entries.len());
        for entry in &shard.entries {
            enc.u64(entry.template_id);
            enc_cost_type(enc, entry.cost_type);
            enc.usize(entry.key.len());
            for slot in &entry.key {
                enc_value_key(enc, slot);
            }
            enc_cost_result(enc, &entry.value);
            enc.bool(entry.referenced);
        }
    }
    let c = &oracle.counters;
    for v in [
        c.logical,
        c.unmemoized,
        c.prepared_logical,
        c.prepared_unmemoized,
        c.scheduler_rounds,
        c.scheduler_tasks,
        c.scheduler_peak_tasks,
        c.scheduler_overadmissions,
    ] {
        enc.u64(v);
    }
}

fn dec_oracle(dec: &mut Dec) -> Result<OracleState, SnapshotError> {
    let interner = dec_str_vec(dec)?;
    let templates = dec_str_vec(dec)?;
    let n = dec.len(16)?;
    let mut text_shards = Vec::with_capacity(n);
    for _ in 0..n {
        let capacity = dec.u64()?;
        let evicted = dec.u64()?;
        let m = dec.len(8)?;
        let mut entries = Vec::with_capacity(m);
        for _ in 0..m {
            let cost_type = dec_cost_type(dec)?;
            let sql = dec.str()?;
            let value = dec_cost_result(dec)?;
            entries.push(TextEntry { cost_type, sql, value, referenced: dec.bool()? });
        }
        text_shards.push(ShardState { capacity, evicted, entries });
    }
    let n = dec.len(16)?;
    let mut prepared_shards = Vec::with_capacity(n);
    for _ in 0..n {
        let capacity = dec.u64()?;
        let evicted = dec.u64()?;
        let m = dec.len(8)?;
        let mut entries = Vec::with_capacity(m);
        for _ in 0..m {
            let template_id = dec.u64()?;
            let cost_type = dec_cost_type(dec)?;
            let k = dec.len(1)?;
            let mut key = Vec::with_capacity(k);
            for _ in 0..k {
                key.push(dec_value_key(dec)?);
            }
            let value = dec_cost_result(dec)?;
            entries.push(PreparedEntry {
                template_id,
                cost_type,
                key,
                value,
                referenced: dec.bool()?,
            });
        }
        prepared_shards.push(ShardState { capacity, evicted, entries });
    }
    let counters = OracleCounters {
        logical: dec.u64()?,
        unmemoized: dec.u64()?,
        prepared_logical: dec.u64()?,
        prepared_unmemoized: dec.u64()?,
        scheduler_rounds: dec.u64()?,
        scheduler_tasks: dec.u64()?,
        scheduler_peak_tasks: dec.u64()?,
        scheduler_overadmissions: dec.u64()?,
    };
    Ok(OracleState { interner, templates, text_shards, prepared_shards, counters })
}

impl Snapshot {
    /// Serialize to the framed, CRC-guarded wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.u64(self.fingerprint);
        enc_rng(&mut enc, &self.rng);
        enc_model(&mut enc, &self.llm);
        enc_acc(&mut enc, &self.acc);
        enc_pool(&mut enc, &self.pool);
        match &self.oracle {
            None => enc.u8(0),
            Some(state) => {
                enc.u8(1);
                enc_oracle(&mut enc, state);
            }
        }
        enc_phase(&mut enc, &self.phase);

        let payload = enc.buf;
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Deserialize, verifying magic, version, framing, and checksum.
    /// Total over arbitrary input: every failure is a typed
    /// [`SnapshotError`].
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let payload_len =
            usize::try_from(payload_len).map_err(|_| SnapshotError::Truncated)?;
        let expected = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
        let rest = &bytes[HEADER_LEN..];
        if rest.len() != payload_len {
            return Err(SnapshotError::Truncated);
        }
        let actual = crc32(rest);
        if actual != expected {
            return Err(SnapshotError::Crc { expected, actual });
        }

        let mut dec = Dec::new(rest);
        let fingerprint = dec.u64()?;
        let rng = dec_rng(&mut dec)?;
        let llm = dec_model(&mut dec, 0)?;
        let acc = dec_acc(&mut dec)?;
        let pool = dec_pool(&mut dec)?;
        let oracle = match dec.u8()? {
            0 => None,
            1 => Some(dec_oracle(&mut dec)?),
            other => {
                return Err(SnapshotError::Malformed(format!("oracle tag {other}")))
            }
        };
        let phase = dec_phase(&mut dec)?;
        if dec.remaining() != 0 {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes",
                dec.remaining()
            )));
        }
        Ok(Snapshot { fingerprint, rng, llm, acc, pool, oracle, phase })
    }
}

// ---------------------------------------------------------------------------
// On-disk checkpoint storage
// ---------------------------------------------------------------------------

/// A checkpoint directory holding numbered snapshot generations.
#[derive(Debug)]
pub struct CheckpointDir {
    dir: PathBuf,
    next_generation: u64,
}

fn generation_of(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?.strip_suffix(".bin")?.parse().ok()
}

fn generation_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot-{generation:06}.bin"))
}

/// Existing snapshot generations in `dir`, ascending.
fn scan_generations(dir: &Path) -> Result<Vec<u64>, SnapshotError> {
    let entries = fs::read_dir(dir)
        .map_err(|e| SnapshotError::Io(format!("{}: {e}", dir.display())))?;
    let mut generations: Vec<u64> = entries
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| generation_of(&entry.file_name().to_string_lossy()))
        .collect();
    // Directory iteration order is platform-defined; sorting restores a
    // canonical view.
    generations.sort_unstable();
    Ok(generations)
}

impl CheckpointDir {
    /// Open (creating if needed) a checkpoint directory. The directory's
    /// parent must already exist — a typo'd path fails here with an
    /// actionable message instead of surfacing later as a failed write.
    pub fn open(dir: &Path) -> Result<CheckpointDir, SnapshotError> {
        if !dir.is_dir() {
            fs::create_dir(dir).map_err(|e| {
                SnapshotError::Io(format!(
                    "cannot create checkpoint directory {}: {e} \
                     (create its parent directory first)",
                    dir.display()
                ))
            })?;
        }
        let next_generation =
            scan_generations(dir)?.last().map(|&g| g + 1).unwrap_or(0);
        Ok(CheckpointDir { dir: dir.to_path_buf(), next_generation })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Write `snapshot` as the next generation: temp file, `fsync`,
    /// atomic rename, best-effort directory fsync, then prune all but
    /// the last [`KEEP_GENERATIONS`] generations. A crash at any point
    /// leaves either the previous or the new generation intact — never a
    /// half-written file under a final name.
    pub fn store(&mut self, snapshot: &Snapshot) -> Result<PathBuf, SnapshotError> {
        let bytes = snapshot.encode();
        let generation = self.next_generation;
        let final_path = generation_path(&self.dir, generation);
        let tmp_path = self.dir.join(format!(".snapshot-{generation:06}.bin.tmp"));

        let io_err = |path: &Path, e: std::io::Error| {
            SnapshotError::Io(format!("{}: {e}", path.display()))
        };
        let mut file = fs::File::create(&tmp_path).map_err(|e| io_err(&tmp_path, e))?;
        file.write_all(&bytes).map_err(|e| io_err(&tmp_path, e))?;
        file.sync_all().map_err(|e| io_err(&tmp_path, e))?;
        drop(file);
        fs::rename(&tmp_path, &final_path).map_err(|e| io_err(&final_path, e))?;
        // Make the rename itself durable; failure here only weakens
        // durability of the *newest* generation, so it is not fatal.
        if let Ok(dir_handle) = fs::File::open(&self.dir) {
            let _ = dir_handle.sync_all();
        }
        self.next_generation = generation + 1;

        for old in scan_generations(&self.dir)? {
            if old + KEEP_GENERATIONS <= generation {
                let _ = fs::remove_file(generation_path(&self.dir, old));
            }
        }
        Ok(final_path)
    }

    /// Load the newest decodable snapshot, falling back past corrupt
    /// generations (each rejection is logged to stderr). Errors with
    /// [`SnapshotError::NoSnapshot`] when the directory holds none, or
    /// with the newest failure when every generation is corrupt.
    pub fn load_latest(dir: &Path) -> Result<Snapshot, SnapshotError> {
        let generations = scan_generations(dir)?;
        if generations.is_empty() {
            return Err(SnapshotError::NoSnapshot);
        }
        let mut first_error: Option<SnapshotError> = None;
        for &generation in generations.iter().rev() {
            let path = generation_path(dir, generation);
            let attempt = fs::read(&path)
                .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))
                .and_then(|bytes| Snapshot::decode(&bytes));
            match attempt {
                Ok(snapshot) => return Ok(snapshot),
                Err(err) => {
                    eprintln!(
                        "sqlbarber: snapshot {} unusable ({err}); \
                         falling back to the previous generation",
                        path.display()
                    );
                    first_error.get_or_insert(err);
                }
            }
        }
        Err(first_error.expect("at least one generation was tried"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> ModelState {
        ModelState::Resilient {
            layer: ResilientState {
                rng: [1, 2, 3, 4],
                now_ms: 12_345,
                breaker: BreakerSnapshot::Open { until_ms: 20_000 },
                retries_left: 7,
                stats: ResilienceStats { calls: 40, retries: 3, ..Default::default() },
            },
            inner: Box::new(ModelState::Transport {
                layer: TransportState {
                    rng: [5, 6, 7, 8],
                    remaining_burst: 2,
                    injected: InjectedFaults { timeouts: 4, bursts: 1, ..Default::default() },
                    wasted: TokenUsage { input_tokens: 900, output_tokens: 0, requests: 4 },
                },
                inner: Box::new(ModelState::Synthetic(SyntheticState {
                    rng: [9, 10, 11, 12],
                    usage: TokenUsage {
                        input_tokens: 10_000,
                        output_tokens: 2_000,
                        requests: 36,
                    },
                    attempts: vec![(1, 2), (3, 1)],
                })),
            }),
        }
    }

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            rng: [11, 22, 33, u64::MAX],
            llm: sample_model(),
            acc: ReportAcc {
                spec_correct: vec![2, 5, 8],
                syntax_correct: vec![8, 20, 24],
                rewrite_total: 24,
                alignment_accuracy: 1.0,
                n_seed_templates: 24,
                n_refined_templates: 6,
                degradation: [1, 0, 2, 0],
            },
            pool: TemplatePool::Profiled(vec![ProfiledState {
                sql: "SELECT l.l_orderkey FROM lineitem AS l WHERE l.l_quantity > {p_1}"
                    .into(),
                costs: vec![10.0, f64::NAN, -0.0],
                evaluations: vec![(vec![0.25, 0.75], 10.0), (vec![], 3.5)],
                consumed: 17.0,
            }]),
            oracle: Some(OracleState {
                interner: vec!["BRAZIL".into(), "ASIA".into()],
                templates: vec!["SELECT 1".into()],
                text_shards: vec![ShardState {
                    capacity: 65_536,
                    evicted: 1,
                    entries: vec![TextEntry {
                        cost_type: CostType::Cardinality,
                        sql: "SELECT 1".into(),
                        value: Err(DbError::UnknownTable("foo".into())),
                        referenced: true,
                    }],
                }],
                prepared_shards: vec![ShardState {
                    capacity: 4,
                    evicted: 0,
                    entries: vec![PreparedEntry {
                        template_id: 0,
                        cost_type: CostType::PlanCost,
                        key: vec![
                            Some(ValueKeySnap::Int(-5)),
                            Some(ValueKeySnap::Float(f64::NAN.to_bits())),
                            Some(ValueKeySnap::Str(1)),
                            Some(ValueKeySnap::Bool(true)),
                            Some(ValueKeySnap::Null),
                            None,
                        ],
                        value: Ok(42.5),
                        referenced: false,
                    }],
                }],
                counters: OracleCounters {
                    logical: 1000,
                    prepared_logical: 900,
                    scheduler_rounds: 12,
                    ..Default::default()
                },
            }),
            phase: PhaseState::MidSearch {
                round: 2,
                sched: SchedState {
                    search_seed: 777,
                    next_round: 5,
                    bad: vec![(0, 3), (4, 1)],
                    skip: vec![4],
                    failures: vec![(0, 2), (4, 5)],
                    evaluations: 512,
                    d: vec![3.0, 0.0, 7.0],
                    queries: vec![("SELECT 1".into(), 9.0)],
                },
            },
        }
    }

    #[test]
    fn round_trips_bit_for_bit() {
        let snapshot = sample_snapshot();
        let bytes = snapshot.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        // NaN costs make PartialEq of the structs unusable for the full
        // check; byte equality of re-encodings is the stronger statement.
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.fingerprint, snapshot.fingerprint);
        assert_eq!(back.phase.name(), "mid-search");
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample_snapshot().encode();
        for len in 0..bytes.len() {
            let err = Snapshot::decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::Crc { .. }
                        | SnapshotError::Malformed(_)
                ),
                "prefix of {len} bytes: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample_snapshot().encode();
        // Flipping any payload bit must trip the CRC; flipping header
        // bits trips magic/version/framing checks instead.
        for byte in (0..bytes.len()).step_by(7) {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 0x10;
            assert!(
                Snapshot::decode(&corrupt).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn version_and_magic_are_checked() {
        let mut bytes = sample_snapshot().encode();
        bytes[5] = 9;
        assert!(matches!(Snapshot::decode(&bytes), Err(SnapshotError::BadVersion(_))));
        bytes[0] = b'X';
        assert!(matches!(Snapshot::decode(&bytes), Err(SnapshotError::BadMagic)));
        assert!(matches!(Snapshot::decode(b""), Err(SnapshotError::Truncated)));
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A payload claiming a 2^60-element vector must fail the length
        // check, not attempt the allocation.
        let mut enc = Enc::new();
        enc.u64(1); // fingerprint
        enc_rng(&mut enc, &[0, 0, 0, 1]);
        enc.u8(0); // synthetic model
        enc_rng(&mut enc, &[0, 0, 0, 1]);
        enc_usage(&mut enc, &TokenUsage::default());
        enc.u64(1 << 60); // hostile attempts length
        let payload = enc.buf;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert_eq!(Snapshot::decode(&bytes), Err(SnapshotError::Truncated));
    }

    #[test]
    fn store_load_and_corruption_fallback() {
        let dir = std::env::temp_dir().join(format!(
            "sqlbarber-snap-test-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let mut ckpt = CheckpointDir::open(&dir).unwrap();
        assert!(matches!(
            CheckpointDir::load_latest(&dir),
            Err(SnapshotError::NoSnapshot)
        ));

        let mut first = sample_snapshot();
        first.fingerprint = 1;
        let mut second = sample_snapshot();
        second.fingerprint = 2;
        let mut third = sample_snapshot();
        third.fingerprint = 3;
        ckpt.store(&first).unwrap();
        ckpt.store(&second).unwrap();
        let third_path = ckpt.store(&third).unwrap();

        // Pruning keeps the last two generations only.
        assert_eq!(scan_generations(&dir).unwrap(), vec![1, 2]);
        assert_eq!(CheckpointDir::load_latest(&dir).unwrap().fingerprint, 3);

        // Bit-flip the newest generation: load falls back to the second.
        let mut bytes = fs::read(&third_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&third_path, &bytes).unwrap();
        assert_eq!(CheckpointDir::load_latest(&dir).unwrap().fingerprint, 2);

        // Truncate it instead: same fallback.
        fs::write(&third_path, &bytes[..10]).unwrap();
        assert_eq!(CheckpointDir::load_latest(&dir).unwrap().fingerprint, 2);

        // Corrupt both: typed error, no panic.
        fs::write(generation_path(&dir, 1), b"garbage").unwrap();
        assert!(CheckpointDir::load_latest(&dir).is_err());

        // Reopening continues the generation numbering.
        let reopened = CheckpointDir::open(&dir).unwrap();
        assert_eq!(reopened.next_generation, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_requires_an_existing_parent() {
        let missing = std::env::temp_dir()
            .join(format!("sqlbarber-no-such-parent-{}", std::process::id()))
            .join("checkpoints");
        let err = CheckpointDir::open(&missing).unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("cannot create checkpoint directory")
                && text.contains("parent"),
            "unhelpful error: {text}"
        );
    }

    #[test]
    fn crc32_matches_the_ieee_reference() {
        // Reference vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
