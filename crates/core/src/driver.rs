//! End-to-end SQLBarber driver.
//!
//! Wires the four phases together — template generation (Algorithm 1),
//! profiling (§5.1), refinement & pruning (Algorithm 2), BO predicate
//! search (Algorithm 3) — while recording the distance-over-time series
//! and phase timings the paper's figures report. Ablation switches
//! reproduce Figure 8(b): `enable_refine: false` is "No-Refine-Prune" and
//! `search.use_bo: false` is "Naive-Search".

use crate::amplify::{amplify_workload, AmplifyConfig};
use crate::bo_search::{bo_predicate_search, BoSearchConfig};
use crate::cost::CostType;
use crate::oracle::CostOracle;
use crate::profiler::{profile_batch, ProfiledTemplate};
use crate::refine::{coverage, refine_and_prune, RefineConfig};
use crate::report::GenerationReport;
use crate::template_gen::{
    generate_templates, template_alignment_accuracy, TemplateGenConfig,
};
use llm::{
    FaultConfig, FaultyTransport, LanguageModel, ResilientLlm, RetryPolicy, SyntheticLlm,
    TransportFaultConfig,
};
use minidb::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlkit::{Template, TemplateSpec};
use std::time::Instant;
use workload::{wasserstein_distance, TargetDistribution};

/// Full pipeline configuration. Defaults are the paper's constants.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlBarberConfig {
    /// Master seed (drives join-path sampling, LHS, BO, and the synthetic
    /// LLM's fault draws).
    pub seed: u64,
    /// Algorithm 1 settings.
    pub template_gen: TemplateGenConfig,
    /// Synthetic-LLM hallucination rates (content faults).
    pub faults: FaultConfig,
    /// Transport-layer fault injection (timeouts, rate limits,
    /// truncation, 5xx, bursts). Default: none.
    pub transport: TransportFaultConfig,
    /// Retry/backoff/circuit-breaker policy absorbing transport faults.
    pub retry: RetryPolicy,
    /// Fraction of the query budget spent on profiling (§5.1 suggests
    /// ~15%).
    pub profiling_fraction: f64,
    /// Algorithm 2 settings.
    pub refine: RefineConfig,
    /// Algorithm 3 settings.
    pub search: BoSearchConfig,
    /// Ablation: disable Algorithm 2 entirely ("No-Refine-Prune").
    pub enable_refine: bool,
    /// Upper bound on refine→search rounds: when the search skips
    /// intervals, refinement gets another chance to cover them before the
    /// run is declared done.
    pub max_outer_rounds: usize,
    /// Worker threads for the cost oracle, profiling fan-out, and the
    /// surrogate forest (`0` = use all available cores). Results are
    /// bit-identical at any thread count.
    pub threads: usize,
    /// Prepared-plan fast path in the cost oracle: plan each template
    /// once, re-cost per binding (default on). `false` is the CLIs'
    /// `--no-prepared` escape hatch — slower, bit-identical output.
    pub use_prepared: bool,
    /// Columnar batch fast path in the cost oracle: cost each BO
    /// mini-batch through struct-of-arrays recost with one memo-shard lock
    /// per batch (default on). `false` is the CLIs' `--no-columnar`
    /// escape hatch — slower, bit-identical output and accounting.
    pub use_columnar: bool,
    /// Post-convergence amplification stage (`--amplify N`): stream
    /// cost-matched queries from the converged BO state through the
    /// prepared plans, bypassing the oracle memo. `None` disables it.
    pub amplify: Option<AmplifyConfig>,
}

impl Default for SqlBarberConfig {
    fn default() -> Self {
        SqlBarberConfig {
            seed: 42,
            template_gen: TemplateGenConfig::default(),
            faults: FaultConfig::default(),
            transport: TransportFaultConfig::none(),
            retry: RetryPolicy::default(),
            profiling_fraction: 0.15,
            refine: RefineConfig::default(),
            search: BoSearchConfig::default(),
            enable_refine: true,
            max_outer_rounds: 3,
            threads: 0,
            use_prepared: true,
            use_columnar: true,
            amplify: None,
        }
    }
}

impl SqlBarberConfig {
    /// Smaller budgets for unit tests and doctests.
    pub fn fast_test() -> SqlBarberConfig {
        SqlBarberConfig {
            faults: FaultConfig::none(),
            refine: RefineConfig {
                phases: vec![(0.2, 2, 2, false), (0.1, 2, 2, true)],
                profile_samples: 6,
            },
            search: BoSearchConfig { max_run_budget: 80, ..Default::default() },
            ..Default::default()
        }
    }

    /// The "No-Refine-Prune" ablation of Figure 8(b).
    pub fn without_refinement(mut self) -> SqlBarberConfig {
        self.enable_refine = false;
        self
    }

    /// The "Naive-Search" ablation of Figure 8(b).
    pub fn with_random_search(mut self) -> SqlBarberConfig {
        self.search.use_bo = false;
        self
    }
}

/// Errors surfaced by the driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// No specification produced a valid seed template.
    NoValidTemplates,
    /// The amplification stage could not write its output stream.
    AmplifyIo(String),
}

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenerateError::NoValidTemplates => {
                write!(f, "no specification yielded a valid seed template")
            }
            GenerateError::AmplifyIo(detail) => {
                write!(f, "amplified workload could not be written: {detail}")
            }
        }
    }
}

impl std::error::Error for GenerateError {}

/// The built-in LLM stack: synthetic model (content faults) wrapped in
/// the transport fault injector, wrapped in the retry/breaker layer. At
/// `TransportFaultConfig::none()` the outer layers are transparent, so
/// the stack is byte-for-byte identical to the bare synthetic model.
pub type DefaultLlm = ResilientLlm<FaultyTransport<SyntheticLlm>>;

/// The SQLBarber system (Figure 2), bound to a database and an LLM.
pub struct SqlBarber<'a, M: LanguageModel = DefaultLlm> {
    db: &'a Database,
    config: SqlBarberConfig,
    llm: M,
    rng: StdRng,
}

impl<'a> SqlBarber<'a, DefaultLlm> {
    /// New system with the built-in synthetic LLM behind the fault
    /// injector and resilience layer. Each layer derives its own RNG from
    /// the master seed, so transport draws and retry jitter never perturb
    /// the model's content stream (and `--threads` never touches any of
    /// them: all LLM traffic is sequential).
    pub fn new(db: &'a Database, config: SqlBarberConfig) -> Self {
        let model = SyntheticLlm::new(config.faults, config.seed ^ 0x5ba8_bebe);
        let transport =
            FaultyTransport::new(model, config.transport, config.seed ^ 0x7a17_5eed);
        let llm = ResilientLlm::new(transport, config.retry, config.seed ^ 0x0b0f_f5e7);
        let rng = StdRng::seed_from_u64(config.seed);
        SqlBarber { db, config, llm, rng }
    }
}

impl<'a, M: LanguageModel> SqlBarber<'a, M> {
    /// New system with a custom language model (e.g. a real API client).
    pub fn with_llm(db: &'a Database, config: SqlBarberConfig, llm: M) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        SqlBarber { db, config, llm, rng }
    }

    /// Borrow the language model (e.g. to inspect token usage).
    pub fn llm(&self) -> &M {
        &self.llm
    }

    /// End-to-end generation: specifications → templates → cost-conforming
    /// workload (Definition 2.13).
    pub fn generate(
        &mut self,
        specs: &[TemplateSpec],
        target: &TargetDistribution,
        cost_type: CostType,
    ) -> Result<GenerationReport, GenerateError> {
        // detlint::allow(ambient_nondet): run timing is reporting-only; no bit-compared artifact depends on it
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let mut report = GenerationReport {
            target_counts: target.counts.clone(),
            ..Default::default()
        };

        // Phase 1: customized template generation (Algorithm 1).
        // detlint::allow(ambient_nondet): phase timing is reporting-only
        #[allow(clippy::disallowed_methods)]
        let phase_start = Instant::now();
        let generated = generate_templates(
            self.db,
            &mut self.llm,
            specs,
            self.config.template_gen,
            &mut self.rng,
        );
        report.phases.template_generation = phase_start.elapsed();
        report.rewrite_stats = generated.stats.clone();
        report.alignment_accuracy = template_alignment_accuracy(&generated.seeds);
        report.n_seed_templates = generated.seeds.len();
        report.degradation.merge(&generated.degradation);
        if generated.seeds.is_empty() {
            return Err(GenerateError::NoValidTemplates);
        }
        let templates: Vec<Template> =
            generated.seeds.into_iter().map(|s| s.template).collect();

        self.run_cost_aware(templates, target, cost_type, start, report)
    }

    /// Run only the cost-aware query generator (§5) on caller-provided
    /// templates — the entry point when templates come from elsewhere
    /// (e.g. a library of hand-written templates).
    pub fn generate_from_templates(
        &mut self,
        templates: Vec<Template>,
        target: &TargetDistribution,
        cost_type: CostType,
    ) -> Result<GenerationReport, GenerateError> {
        if templates.is_empty() {
            return Err(GenerateError::NoValidTemplates);
        }
        // detlint::allow(ambient_nondet): run timing is reporting-only; no bit-compared artifact depends on it
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let report = GenerationReport {
            target_counts: target.counts.clone(),
            n_seed_templates: templates.len(),
            alignment_accuracy: 1.0,
            ..Default::default()
        };
        self.run_cost_aware(templates, target, cost_type, start, report)
    }

    fn run_cost_aware(
        &mut self,
        templates: Vec<Template>,
        target: &TargetDistribution,
        cost_type: CostType,
        start: Instant,
        mut report: GenerationReport,
    ) -> Result<GenerationReport, GenerateError> {
        let width = target.intervals.width();
        let total_queries = target.total() as usize;
        let oracle = CostOracle::new(self.db, self.config.threads)
            .with_prepared(self.config.use_prepared)
            .with_columnar(self.config.use_columnar);
        // Propagate the resolved worker count into the surrogate forest.
        let mut search = self.config.search.clone();
        search.bo.threads = oracle.threads();

        // Phase 2: profiling (§5.1).
        // detlint::allow(ambient_nondet): phase timing is reporting-only
        #[allow(clippy::disallowed_methods)]
        let phase_start = Instant::now();
        let profile_seed: u64 = self.rng.gen();
        let mut profiled: Vec<ProfiledTemplate> = profile_batch(
            &oracle,
            templates,
            cost_type,
            total_queries,
            self.config.profiling_fraction,
            profile_seed,
        );
        report.phases.profiling = phase_start.elapsed();
        let after_profiling = coverage(&profiled, target);
        report.distance_series.push((
            start.elapsed().as_secs_f64(),
            wasserstein_distance(&target.counts, &after_profiling, width),
        ));

        // Phase 3: refinement & pruning (Algorithm 2).
        // detlint::allow(ambient_nondet): phase timing is reporting-only
        #[allow(clippy::disallowed_methods)]
        let phase_start = Instant::now();
        if self.config.enable_refine {
            let outcome = refine_and_prune(
                &oracle,
                &mut self.llm,
                &mut profiled,
                target,
                cost_type,
                &self.config.refine,
                &mut self.rng,
            );
            report.n_refined_templates = outcome.accepted;
            report.degradation.merge(&outcome.degradation);
        }
        report.phases.refinement = phase_start.elapsed();
        if profiled.is_empty() {
            return Err(GenerateError::NoValidTemplates);
        }

        // Phase 4: BO predicate search (Algorithm 3), interleaved with
        // additional refinement rounds when the search gives up on
        // intervals ("this process continues until the generated cost
        // distribution adequately matches the target", §5.3) — bounded by
        // `max_outer_rounds`.
        // detlint::allow(ambient_nondet): phase timing is reporting-only
        #[allow(clippy::disallowed_methods)]
        let phase_start = Instant::now();
        let mut result;
        let mut round = 0;
        let mut extra_refine = std::time::Duration::ZERO;
        loop {
            round += 1;
            let mut series: Vec<(f64, f64)> = Vec::new();
            result = bo_predicate_search(
                &oracle,
                &mut profiled,
                target,
                cost_type,
                &search,
                &mut self.rng,
                |d| {
                    series.push((
                        start.elapsed().as_secs_f64(),
                        wasserstein_distance(&target.counts, d, width),
                    ));
                },
            );
            report.distance_series.extend(series);
            let distance =
                wasserstein_distance(&target.counts, &result.distribution, width);
            let can_retry = distance > 0.0
                && !result.skipped.is_empty()
                && self.config.enable_refine
                && round < self.config.max_outer_rounds;
            if !can_retry {
                break;
            }
            // Another Algorithm-2 pass, now aware (through the updated
            // profiling results) of the intervals the search struggled on.
            // detlint::allow(ambient_nondet): phase timing is reporting-only
            #[allow(clippy::disallowed_methods)]
            let refine_start = Instant::now();
            let outcome = refine_and_prune(
                &oracle,
                &mut self.llm,
                &mut profiled,
                target,
                cost_type,
                &self.config.refine,
                &mut self.rng,
            );
            report.n_refined_templates += outcome.accepted;
            report.degradation.merge(&outcome.degradation);
            extra_refine += refine_start.elapsed();
        }
        report.phases.refinement += extra_refine;
        report.phases.predicate_search = phase_start.elapsed() - extra_refine;

        // Phase 5: post-convergence amplification (ROADMAP item 1) —
        // stream cost-matched queries from the converged state through the
        // prepared plans, bypassing the oracle memo entirely. The stage
        // seed is drawn only when the stage runs, after the search has
        // finished, so enabling it never perturbs the BO workload.
        if let Some(amplify_config) = self.config.amplify.clone() {
            // detlint::allow(ambient_nondet): phase timing is reporting-only
            #[allow(clippy::disallowed_methods)]
            let amplify_start = Instant::now();
            let amplify_seed: u64 = self.rng.gen();
            let amplify_stats = match &amplify_config.out {
                Some(path) => {
                    let file = std::fs::File::create(path).map_err(|e| {
                        GenerateError::AmplifyIo(format!("{}: {e}", path.display()))
                    })?;
                    amplify_workload(
                        &oracle,
                        &profiled,
                        target,
                        cost_type,
                        &amplify_config,
                        amplify_seed,
                        std::io::BufWriter::new(file),
                    )
                }
                None => amplify_workload(
                    &oracle,
                    &profiled,
                    target,
                    cost_type,
                    &amplify_config,
                    amplify_seed,
                    std::io::sink(),
                ),
            }
            .map_err(|e| GenerateError::AmplifyIo(e.to_string()))?;
            report.amplify = Some(amplify_stats);
            report.phases.amplification = amplify_start.elapsed();
        }

        report.n_final_templates = profiled.len();
        report.evaluations = profiled.iter().map(|t| t.consumed as usize).sum();
        let stats = oracle.stats();
        report.oracle_probes = stats.logical_probes;
        report.oracle_physical_evals = stats.physical_evals;
        report.oracle_cache_hits = stats.cache_hits;
        report.oracle_prepared_hits = stats.prepared_hits;
        report.oracle_prepared_misses = stats.prepared_misses;
        report.oracle_evictions = stats.evictions;
        report.scheduler_rounds = stats.scheduler_rounds;
        report.scheduler_tasks = stats.scheduler_tasks;
        report.scheduler_peak_tasks = stats.scheduler_peak_tasks;
        report.scheduler_overadmissions = stats.scheduler_overadmissions;
        report.final_distance =
            wasserstein_distance(&target.counts, &result.distribution, width);
        report.distribution = result.distribution;
        report.skipped_intervals = result.skipped;
        report.queries = result.queries;
        report.llm_usage = self.llm.usage();
        report.resilience = self.llm.resilience();
        report.elapsed = start.elapsed();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::redset::redset_template_specs;
    use workload::CostIntervals;

    fn tpch() -> Database {
        minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
    }

    #[test]
    fn end_to_end_uniform_cardinality_converges() {
        let db = tpch();
        let target =
            TargetDistribution::uniform(CostIntervals::new(0.0, 5000.0, 5), 100);
        let specs = redset_template_specs(3);
        let mut barber = SqlBarber::new(&db, SqlBarberConfig::fast_test());
        let report =
            barber.generate(&specs[..8], &target, CostType::Cardinality).unwrap();
        assert!(
            report.final_distance < 300.0,
            "distance {} (d={:?}, skipped={:?})",
            report.final_distance,
            report.distribution,
            report.skipped_intervals
        );
        assert!(report.queries.len() >= 90, "only {} queries", report.queries.len());
        // distance series is non-increasing apart from float noise
        let first = report.distance_series.first().unwrap().1;
        let last = report.distance_series.last().unwrap().1;
        assert!(last <= first);
        assert!(report.llm_usage.requests > 0);
        assert_eq!(report.alignment_accuracy, 1.0);
    }

    #[test]
    fn templates_can_be_supplied_directly() {
        let db = tpch();
        let target =
            TargetDistribution::uniform(CostIntervals::new(0.0, 5000.0, 5), 40);
        let templates = vec![
            sqlkit::parse_template(
                "SELECT l.l_orderkey FROM lineitem AS l WHERE l.l_extendedprice > {p_1}",
            )
            .unwrap(),
        ];
        let mut barber = SqlBarber::new(&db, SqlBarberConfig::fast_test());
        let report = barber
            .generate_from_templates(templates, &target, CostType::Cardinality)
            .unwrap();
        assert!(report.queries.len() >= 30, "{} queries", report.queries.len());
    }

    #[test]
    fn empty_inputs_error() {
        let db = tpch();
        let target =
            TargetDistribution::uniform(CostIntervals::paper_default(5), 10);
        let mut barber = SqlBarber::new(&db, SqlBarberConfig::fast_test());
        assert!(matches!(
            barber.generate_from_templates(vec![], &target, CostType::Cardinality),
            Err(GenerateError::NoValidTemplates)
        ));
    }

    #[test]
    fn ablations_are_wired() {
        let config = SqlBarberConfig::fast_test().without_refinement();
        assert!(!config.enable_refine);
        let config = SqlBarberConfig::fast_test().with_random_search();
        assert!(!config.search.use_bo);
    }
}
