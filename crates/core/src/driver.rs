//! End-to-end SQLBarber driver.
//!
//! Wires the four phases together — template generation (Algorithm 1),
//! profiling (§5.1), refinement & pruning (Algorithm 2), BO predicate
//! search (Algorithm 3) — while recording the distance-over-time series
//! and phase timings the paper's figures report. Ablation switches
//! reproduce Figure 8(b): `enable_refine: false` is "No-Refine-Prune" and
//! `search.use_bo: false` is "Naive-Search".
//!
//! The pipeline is a resumable state machine: with a
//! [`CheckpointConfig`], every phase boundary (and every
//! `every` scheduler rounds inside the search) writes a durable
//! [`crate::snapshot::Snapshot`], and [`SqlBarber::resume`] re-enters the
//! pipeline at the recorded boundary with every RNG chain, memo shard,
//! and counter restored — producing byte-identical output to an
//! uninterrupted run. [`KillSwitch`] injects deterministic crashes at
//! those same boundaries for the chaos harness.

use crate::amplify::{amplify_workload, AmplifyConfig};
use crate::bo_search::{
    naive_random_search, seed_search_state, trace_pool, BoSearchConfig, GeneratedQuery,
    SearchResult, SearchState,
};
use crate::cost::CostType;
use crate::oracle::CostOracle;
use crate::profiler::{profile_batch, ProfiledTemplate};
use crate::refine::{coverage, refine_and_prune, RefineConfig};
use crate::report::GenerationReport;
use crate::scheduler::{deficit_schedule, RoundControl, RoundSnapshot, SchedResume};
use crate::snapshot::{
    CheckpointDir, OracleState, PhaseState, ProfiledState, ReportAcc, SchedState, Snapshot,
    StoredResult, TemplatePool,
};
use crate::template_gen::{
    generate_templates, template_alignment_accuracy, TemplateGenConfig,
};
use llm::{
    FaultConfig, FaultyTransport, LanguageModel, ResilientLlm, RetryPolicy, SyntheticLlm,
    TransportFaultConfig,
};
use minidb::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlkit::{Template, TemplateSpec};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::time::Instant;
use workload::{wasserstein_distance, AtomicFile, TargetDistribution};

/// Durable checkpointing settings (`--checkpoint-dir`).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Snapshot directory. Created on first use when its parent exists;
    /// a missing parent is an up-front error, not a mid-run surprise.
    pub dir: PathBuf,
    /// Mid-search cadence: one snapshot every `every` scheduler rounds.
    /// Phase boundaries are always checkpointed regardless.
    pub every: u64,
}

/// Full pipeline configuration. Defaults are the paper's constants.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlBarberConfig {
    /// Master seed (drives join-path sampling, LHS, BO, and the synthetic
    /// LLM's fault draws).
    pub seed: u64,
    /// Algorithm 1 settings.
    pub template_gen: TemplateGenConfig,
    /// Synthetic-LLM hallucination rates (content faults).
    pub faults: FaultConfig,
    /// Transport-layer fault injection (timeouts, rate limits,
    /// truncation, 5xx, bursts). Default: none.
    pub transport: TransportFaultConfig,
    /// Retry/backoff/circuit-breaker policy absorbing transport faults.
    pub retry: RetryPolicy,
    /// Fraction of the query budget spent on profiling (§5.1 suggests
    /// ~15%).
    pub profiling_fraction: f64,
    /// Algorithm 2 settings.
    pub refine: RefineConfig,
    /// Algorithm 3 settings.
    pub search: BoSearchConfig,
    /// Ablation: disable Algorithm 2 entirely ("No-Refine-Prune").
    pub enable_refine: bool,
    /// Upper bound on refine→search rounds: when the search skips
    /// intervals, refinement gets another chance to cover them before the
    /// run is declared done.
    pub max_outer_rounds: usize,
    /// Worker threads for the cost oracle, profiling fan-out, and the
    /// surrogate forest (`0` = use all available cores). Results are
    /// bit-identical at any thread count.
    pub threads: usize,
    /// Prepared-plan fast path in the cost oracle: plan each template
    /// once, re-cost per binding (default on). `false` is the CLIs'
    /// `--no-prepared` escape hatch — slower, bit-identical output.
    pub use_prepared: bool,
    /// Columnar batch fast path in the cost oracle: cost each BO
    /// mini-batch through struct-of-arrays recost with one memo-shard lock
    /// per batch (default on). `false` is the CLIs' `--no-columnar`
    /// escape hatch — slower, bit-identical output and accounting.
    pub use_columnar: bool,
    /// Post-convergence amplification stage (`--amplify N`): stream
    /// cost-matched queries from the converged BO state through the
    /// prepared plans, bypassing the oracle memo. `None` disables it.
    pub amplify: Option<AmplifyConfig>,
    /// Durable snapshots at phase boundaries and every
    /// [`CheckpointConfig::every`] scheduler rounds. `None` disables
    /// checkpointing. Excluded from the resume fingerprint: checkpoint
    /// plumbing never shapes the computation.
    pub checkpoint: Option<CheckpointConfig>,
}

impl Default for SqlBarberConfig {
    fn default() -> Self {
        SqlBarberConfig {
            seed: 42,
            template_gen: TemplateGenConfig::default(),
            faults: FaultConfig::default(),
            transport: TransportFaultConfig::none(),
            retry: RetryPolicy::default(),
            profiling_fraction: 0.15,
            refine: RefineConfig::default(),
            search: BoSearchConfig::default(),
            enable_refine: true,
            max_outer_rounds: 3,
            threads: 0,
            use_prepared: true,
            use_columnar: true,
            amplify: None,
            checkpoint: None,
        }
    }
}

impl SqlBarberConfig {
    /// Smaller budgets for unit tests and doctests.
    pub fn fast_test() -> SqlBarberConfig {
        SqlBarberConfig {
            faults: FaultConfig::none(),
            refine: RefineConfig {
                phases: vec![(0.2, 2, 2, false), (0.1, 2, 2, true)],
                profile_samples: 6,
            },
            search: BoSearchConfig { max_run_budget: 80, ..Default::default() },
            ..Default::default()
        }
    }

    /// The "No-Refine-Prune" ablation of Figure 8(b).
    pub fn without_refinement(mut self) -> SqlBarberConfig {
        self.enable_refine = false;
        self
    }

    /// The "Naive-Search" ablation of Figure 8(b).
    pub fn with_random_search(mut self) -> SqlBarberConfig {
        self.search.use_bo = false;
        self
    }
}

/// Errors surfaced by the driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// No specification produced a valid seed template.
    NoValidTemplates,
    /// The amplification stage could not write its output stream.
    AmplifyIo(String),
    /// A [`KillSwitch`] fired at the named point (unwind mode).
    Killed(String),
    /// Checkpoint write, load, or resume failed.
    Checkpoint(String),
}

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenerateError::NoValidTemplates => {
                write!(f, "no specification yielded a valid seed template")
            }
            GenerateError::AmplifyIo(detail) => {
                write!(f, "amplified workload could not be written: {detail}")
            }
            GenerateError::Killed(point) => {
                write!(f, "killed by the chaos switch at {point}")
            }
            GenerateError::Checkpoint(detail) => {
                write!(f, "checkpoint/resume failed: {detail}")
            }
        }
    }
}

impl std::error::Error for GenerateError {}

/// Pipeline boundaries the chaos harness can kill at. Each corresponds
/// to a [`PhaseState`] variant and fires immediately *after* the
/// checkpoint written at that boundary, so a resumed run replays the
/// exact remaining work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// After Algorithm 1, before profiling.
    AfterTemplates,
    /// After §5.1 profiling, before initial refinement.
    AfterProfiling,
    /// After an Algorithm-2 pass, before the search round it feeds.
    AfterRefine,
    /// At a scheduler round boundary inside the BO search.
    MidSearch,
    /// After a search round, before the retry decision/amplification.
    AfterSearch,
}

impl KillPoint {
    /// Stable name, identical to [`PhaseState::name`].
    pub fn name(self) -> &'static str {
        match self {
            KillPoint::AfterTemplates => "after-templates",
            KillPoint::AfterProfiling => "after-profiling",
            KillPoint::AfterRefine => "after-refine",
            KillPoint::MidSearch => "mid-search",
            KillPoint::AfterSearch => "after-search",
        }
    }

    /// Inverse of [`KillPoint::name`].
    pub fn parse(name: &str) -> Option<KillPoint> {
        Some(match name {
            "after-templates" => KillPoint::AfterTemplates,
            "after-profiling" => KillPoint::AfterProfiling,
            "after-refine" => KillPoint::AfterRefine,
            "mid-search" => KillPoint::MidSearch,
            "after-search" => KillPoint::AfterSearch,
            _ => return None,
        })
    }
}

/// How a [`KillSwitch`] dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// Return [`GenerateError::Killed`]: a clean unwind, destructors run.
    Unwind,
    /// `std::process::abort()`: no destructors, simulating a hard crash
    /// (power loss, OOM kill). Only useful from a subprocess harness.
    Abort,
}

/// Deterministic crash injector for the chaos harness: fires once, at
/// the first occurrence of its kill point, immediately after the
/// checkpoint written at that boundary.
#[derive(Debug, Clone)]
pub struct KillSwitch {
    point: KillPoint,
    mode: KillMode,
    fired: bool,
}

impl KillSwitch {
    /// A switch that kills at the first occurrence of `point`.
    pub fn new(point: KillPoint, mode: KillMode) -> KillSwitch {
        KillSwitch { point, mode, fired: false }
    }

    /// Parse a CLI spec: a kill-point name with an optional mode suffix,
    /// e.g. `"mid-search"` or `"after-refine:abort"`.
    pub fn parse(spec: &str) -> Result<KillSwitch, String> {
        let (name, mode) = match spec.split_once(':') {
            Some((name, "abort")) => (name, KillMode::Abort),
            Some((name, "unwind")) => (name, KillMode::Unwind),
            Some((_, other)) => {
                return Err(format!(
                    "unknown kill mode {other:?} (use :unwind or :abort)"
                ))
            }
            None => (spec, KillMode::Unwind),
        };
        let point = KillPoint::parse(name).ok_or_else(|| {
            format!(
                "unknown kill point {name:?} (one of after-templates, \
                 after-profiling, after-refine, mid-search, after-search)"
            )
        })?;
        Ok(KillSwitch::new(point, mode))
    }

    fn check(&mut self, point: KillPoint) -> Result<(), GenerateError> {
        if self.fired || self.point != point {
            return Ok(());
        }
        self.fired = true;
        match self.mode {
            KillMode::Unwind => {
                Err(GenerateError::Killed(point.name().to_string()))
            }
            KillMode::Abort => std::process::abort(),
        }
    }
}

/// The built-in LLM stack: synthetic model (content faults) wrapped in
/// the transport fault injector, wrapped in the retry/breaker layer. At
/// `TransportFaultConfig::none()` the outer layers are transparent, so
/// the stack is byte-for-byte identical to the bare synthetic model.
pub type DefaultLlm = ResilientLlm<FaultyTransport<SyntheticLlm>>;

/// FNV-1a over `bytes`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Identity of a run for resume compatibility: everything that shapes
/// the computation, excluding output/checkpoint plumbing (resuming into
/// a different checkpoint dir or amplify path is legal — the bytes the
/// pipeline computes are the same).
fn config_fingerprint(
    config: &SqlBarberConfig,
    target: &TargetDistribution,
    cost_type: CostType,
) -> u64 {
    let mut canon = config.clone();
    canon.checkpoint = None;
    if let Some(amplify) = &mut canon.amplify {
        amplify.out = None;
    }
    fnv1a(format!("{canon:?}|{target:?}|{cost_type:?}").as_bytes())
}

/// Live checkpoint sink for one run.
struct Checkpointer {
    dir: CheckpointDir,
    every: u64,
    fingerprint: u64,
}

/// Pipeline entry state for `run_cost_aware`. A fresh run enters at
/// `Profile`; resume maps each snapshot [`PhaseState`] to the stage
/// that follows its boundary.
enum Stage {
    /// Profile the seed templates (fresh entry / `after-templates`).
    Profile { seeds: Vec<Template> },
    /// Run the Algorithm-2 pass feeding search round `round`
    /// (`after-profiling` resumes at round 1).
    Refine { round: usize },
    /// Run search round `round`; `sched` restores a mid-search snapshot.
    Search { round: usize, sched: Option<SchedState> },
    /// Decide whether round `round`'s `result` warrants another
    /// refine→search round (`after-search`).
    Decide { round: usize, result: SearchResult },
    /// Amplify and assemble the final report.
    Finish { result: SearchResult },
}

fn pool_of(profiled: &[ProfiledTemplate]) -> TemplatePool {
    TemplatePool::Profiled(profiled.iter().map(|t| t.to_state()).collect())
}

/// Report fields committed before a boundary, in snapshot form.
fn acc_of(report: &GenerationReport) -> ReportAcc {
    ReportAcc {
        spec_correct: report.rewrite_stats.spec_correct.iter().map(|&v| v as u64).collect(),
        syntax_correct: report
            .rewrite_stats
            .syntax_correct
            .iter()
            .map(|&v| v as u64)
            .collect(),
        rewrite_total: report.rewrite_stats.total as u64,
        alignment_accuracy: report.alignment_accuracy,
        n_seed_templates: report.n_seed_templates as u64,
        n_refined_templates: report.n_refined_templates as u64,
        degradation: [
            report.degradation.llm_failures,
            report.degradation.malformed_responses,
            report.degradation.abandoned_specs,
            report.degradation.abandoned_intervals,
        ],
    }
}

/// Inverse of [`acc_of`]: a fresh report carrying the accumulated fields.
fn report_from_acc(acc: &ReportAcc, target: &TargetDistribution) -> GenerationReport {
    let mut report = GenerationReport {
        target_counts: target.counts.clone(),
        ..Default::default()
    };
    report.rewrite_stats.spec_correct =
        acc.spec_correct.iter().map(|&v| v as usize).collect();
    report.rewrite_stats.syntax_correct =
        acc.syntax_correct.iter().map(|&v| v as usize).collect();
    report.rewrite_stats.total = acc.rewrite_total as usize;
    report.alignment_accuracy = acc.alignment_accuracy;
    report.n_seed_templates = acc.n_seed_templates as usize;
    report.n_refined_templates = acc.n_refined_templates as usize;
    report.degradation.llm_failures = acc.degradation[0];
    report.degradation.malformed_responses = acc.degradation[1];
    report.degradation.abandoned_specs = acc.degradation[2];
    report.degradation.abandoned_intervals = acc.degradation[3];
    report
}

fn sched_state_of(snap: &RoundSnapshot<'_>) -> SchedState {
    SchedState {
        search_seed: snap.search_seed,
        next_round: snap.next_round,
        bad: snap.bad.iter().map(|&(j, t)| (j as u64, t as u64)).collect(),
        skip: snap.skip.iter().map(|&j| j as u64).collect(),
        failures: snap.failures.iter().map(|(&j, &c)| (j as u64, c)).collect(),
        evaluations: snap.evaluations as u64,
        d: snap.d.to_vec(),
        queries: snap.queries.iter().map(|q| (q.sql.clone(), q.cost)).collect(),
    }
}

/// Rebuild the scheduler bookkeeping and live search state from a
/// mid-search snapshot. `seen` is exactly the accepted SQL set (the
/// scheduler's `try_accept` is the only inserter).
fn sched_resume_of(state: &SchedState) -> (SchedResume, SearchState) {
    let queries: Vec<GeneratedQuery> = state
        .queries
        .iter()
        .map(|(sql, cost)| GeneratedQuery { sql: sql.clone(), cost: *cost })
        .collect();
    let seen: HashSet<String> = queries.iter().map(|q| q.sql.clone()).collect();
    let search_state = SearchState { d: state.d.clone(), queries, seen };
    let resume = SchedResume {
        next_round: state.next_round,
        bad: state.bad.iter().map(|&(j, t)| (j as usize, t as usize)).collect(),
        skip: state.skip.iter().map(|&j| j as usize).collect(),
        failures: state.failures.iter().map(|&(j, c)| (j as usize, c)).collect(),
        evaluations: state.evaluations as usize,
    };
    (resume, search_state)
}

fn stored_result_of(result: &SearchResult) -> StoredResult {
    StoredResult {
        queries: result.queries.iter().map(|q| (q.sql.clone(), q.cost)).collect(),
        distribution: result.distribution.clone(),
        skipped: result.skipped.iter().map(|&j| j as u64).collect(),
        evaluations: result.evaluations as u64,
    }
}

fn result_from_stored(stored: &StoredResult) -> SearchResult {
    SearchResult {
        queries: stored
            .queries
            .iter()
            .map(|(sql, cost)| GeneratedQuery { sql: sql.clone(), cost: *cost })
            .collect(),
        distribution: stored.distribution.clone(),
        skipped: stored.skipped.iter().map(|&j| j as usize).collect(),
        evaluations: stored.evaluations as usize,
    }
}

fn restore_profiled(
    db: &Database,
    states: &[ProfiledState],
) -> Result<Vec<ProfiledTemplate>, GenerateError> {
    states
        .iter()
        .map(|s| ProfiledTemplate::from_state(db, s).map_err(GenerateError::Checkpoint))
        .collect()
}

/// The SQLBarber system (Figure 2), bound to a database and an LLM.
pub struct SqlBarber<'a, M: LanguageModel = DefaultLlm> {
    db: &'a Database,
    config: SqlBarberConfig,
    llm: M,
    rng: StdRng,
    kill: Option<KillSwitch>,
}

impl<'a> SqlBarber<'a, DefaultLlm> {
    /// New system with the built-in synthetic LLM behind the fault
    /// injector and resilience layer. Each layer derives its own RNG from
    /// the master seed, so transport draws and retry jitter never perturb
    /// the model's content stream (and `--threads` never touches any of
    /// them: all LLM traffic is sequential).
    pub fn new(db: &'a Database, config: SqlBarberConfig) -> Self {
        let model = SyntheticLlm::new(config.faults, config.seed ^ 0x5ba8_bebe);
        let transport =
            FaultyTransport::new(model, config.transport, config.seed ^ 0x7a17_5eed);
        let llm = ResilientLlm::new(transport, config.retry, config.seed ^ 0x0b0f_f5e7);
        let rng = StdRng::seed_from_u64(config.seed);
        SqlBarber { db, config, llm, rng, kill: None }
    }
}

impl<'a, M: LanguageModel> SqlBarber<'a, M> {
    /// New system with a custom language model (e.g. a real API client).
    pub fn with_llm(db: &'a Database, config: SqlBarberConfig, llm: M) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        SqlBarber { db, config, llm, rng, kill: None }
    }

    /// Arm a deterministic crash injector (chaos harness only).
    pub fn with_kill_switch(mut self, kill: KillSwitch) -> Self {
        self.kill = Some(kill);
        self
    }

    /// Borrow the language model (e.g. to inspect token usage).
    pub fn llm(&self) -> &M {
        &self.llm
    }

    /// End-to-end generation: specifications → templates → cost-conforming
    /// workload (Definition 2.13).
    pub fn generate(
        &mut self,
        specs: &[TemplateSpec],
        target: &TargetDistribution,
        cost_type: CostType,
    ) -> Result<GenerationReport, GenerateError> {
        // detlint::allow(ambient_nondet): run timing is reporting-only; no bit-compared artifact depends on it
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let mut report = GenerationReport {
            target_counts: target.counts.clone(),
            ..Default::default()
        };

        // Phase 1: customized template generation (Algorithm 1).
        // detlint::allow(ambient_nondet): phase timing is reporting-only
        #[allow(clippy::disallowed_methods)]
        let phase_start = Instant::now();
        let generated = generate_templates(
            self.db,
            &mut self.llm,
            specs,
            self.config.template_gen,
            &mut self.rng,
        );
        report.phases.template_generation = phase_start.elapsed();
        report.rewrite_stats = generated.stats.clone();
        report.alignment_accuracy = template_alignment_accuracy(&generated.seeds);
        report.n_seed_templates = generated.seeds.len();
        report.degradation.merge(&generated.degradation);
        if generated.seeds.is_empty() {
            return Err(GenerateError::NoValidTemplates);
        }
        let templates: Vec<Template> =
            generated.seeds.into_iter().map(|s| s.template).collect();

        self.run_cost_aware(
            Stage::Profile { seeds: templates },
            Vec::new(),
            None,
            target,
            cost_type,
            start,
            report,
        )
    }

    /// Run only the cost-aware query generator (§5) on caller-provided
    /// templates — the entry point when templates come from elsewhere
    /// (e.g. a library of hand-written templates).
    pub fn generate_from_templates(
        &mut self,
        templates: Vec<Template>,
        target: &TargetDistribution,
        cost_type: CostType,
    ) -> Result<GenerationReport, GenerateError> {
        if templates.is_empty() {
            return Err(GenerateError::NoValidTemplates);
        }
        // detlint::allow(ambient_nondet): run timing is reporting-only; no bit-compared artifact depends on it
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let report = GenerationReport {
            target_counts: target.counts.clone(),
            n_seed_templates: templates.len(),
            alignment_accuracy: 1.0,
            ..Default::default()
        };
        self.run_cost_aware(
            Stage::Profile { seeds: templates },
            Vec::new(),
            None,
            target,
            cost_type,
            start,
            report,
        )
    }

    /// Resume from the newest intact snapshot in `dir`. Corrupt latest
    /// generations (truncated or bit-flipped) are detected by CRC and
    /// skipped in favor of the previous good one; the run then replays
    /// the remaining pipeline and produces byte-identical workload files,
    /// manifests, and counters to an uninterrupted run.
    ///
    /// `self` must be freshly constructed with the *same* config, target,
    /// and cost type as the checkpointed run (enforced via fingerprint).
    pub fn resume(
        &mut self,
        dir: &Path,
        target: &TargetDistribution,
        cost_type: CostType,
    ) -> Result<GenerationReport, GenerateError> {
        let snapshot = CheckpointDir::load_latest(dir)
            .map_err(|e| GenerateError::Checkpoint(e.to_string()))?;
        self.resume_from(&snapshot, target, cost_type)
    }

    /// Resume from an already-decoded snapshot (see [`SqlBarber::resume`]).
    pub fn resume_from(
        &mut self,
        snapshot: &Snapshot,
        target: &TargetDistribution,
        cost_type: CostType,
    ) -> Result<GenerationReport, GenerateError> {
        let fingerprint = config_fingerprint(&self.config, target, cost_type);
        if fingerprint != snapshot.fingerprint {
            return Err(GenerateError::Checkpoint(format!(
                "snapshot fingerprint {:016x} does not match this run's {:016x}; \
                 resume with the same config, target, and cost type the \
                 checkpoint was taken under",
                snapshot.fingerprint, fingerprint
            )));
        }
        self.llm
            .import_state(&snapshot.llm)
            .map_err(GenerateError::Checkpoint)?;
        self.rng = StdRng::from_state(snapshot.rng);
        let report = report_from_acc(&snapshot.acc, target);
        // detlint::allow(ambient_nondet): run timing is reporting-only; no bit-compared artifact depends on it
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();

        let (stage, profiled) = match (&snapshot.pool, &snapshot.phase) {
            (TemplatePool::Seeds(seeds), PhaseState::AfterTemplates) => {
                let templates = seeds
                    .iter()
                    .map(|sql| {
                        sqlkit::parse_template(sql).map_err(|e| {
                            GenerateError::Checkpoint(format!(
                                "snapshot seed template no longer parses: {e} ({sql})"
                            ))
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                (Stage::Profile { seeds: templates }, Vec::new())
            }
            (TemplatePool::Profiled(states), phase) => {
                let profiled = restore_profiled(self.db, states)?;
                let stage = match phase {
                    PhaseState::AfterTemplates => {
                        return Err(GenerateError::Checkpoint(
                            "snapshot is inconsistent: profiled pool at the \
                             after-templates boundary"
                                .into(),
                        ))
                    }
                    PhaseState::AfterProfiling => Stage::Refine { round: 1 },
                    PhaseState::AfterRefine { round } => {
                        Stage::Search { round: *round as usize, sched: None }
                    }
                    PhaseState::MidSearch { round, sched } => Stage::Search {
                        round: *round as usize,
                        sched: Some(sched.clone()),
                    },
                    PhaseState::AfterSearch { round, result } => Stage::Decide {
                        round: *round as usize,
                        result: result_from_stored(result),
                    },
                };
                (stage, profiled)
            }
            (TemplatePool::Seeds(_), phase) => {
                return Err(GenerateError::Checkpoint(format!(
                    "snapshot is inconsistent: seed pool at the {} boundary",
                    phase.name()
                )))
            }
        };
        self.run_cost_aware(
            stage,
            profiled,
            snapshot.oracle.as_ref(),
            target,
            cost_type,
            start,
            report,
        )
    }

    /// Open the checkpoint sink when configured, vetoing models that
    /// cannot export their state before any work is done.
    fn checkpointer(
        &self,
        target: &TargetDistribution,
        cost_type: CostType,
    ) -> Result<Option<Checkpointer>, GenerateError> {
        let Some(cfg) = &self.config.checkpoint else { return Ok(None) };
        if self.llm.export_state().is_none() {
            return Err(GenerateError::Checkpoint(
                "the configured language model does not expose checkpoint \
                 state (export_state returned None); run without a \
                 checkpoint directory"
                    .into(),
            ));
        }
        let dir = CheckpointDir::open(&cfg.dir)
            .map_err(|e| GenerateError::Checkpoint(e.to_string()))?;
        Ok(Some(Checkpointer {
            dir,
            every: cfg.every.max(1),
            fingerprint: config_fingerprint(&self.config, target, cost_type),
        }))
    }

    /// Write one snapshot at a boundary (no-op without a checkpoint dir).
    fn write_checkpoint(
        &self,
        ckpt: &mut Option<Checkpointer>,
        oracle: Option<&CostOracle>,
        report: &GenerationReport,
        pool: TemplatePool,
        phase: PhaseState,
    ) -> Result<(), GenerateError> {
        let Some(ckpt) = ckpt.as_mut() else { return Ok(()) };
        let llm = self.llm.export_state().ok_or_else(|| {
            GenerateError::Checkpoint(
                "the configured language model stopped exposing checkpoint state".into(),
            )
        })?;
        let snapshot = Snapshot {
            fingerprint: ckpt.fingerprint,
            rng: self.rng.state(),
            llm,
            acc: acc_of(report),
            pool,
            oracle: oracle.map(|o| o.export_state()),
            phase,
        };
        ckpt.dir
            .store(&snapshot)
            .map(|_| ())
            .map_err(|e| GenerateError::Checkpoint(e.to_string()))
    }

    fn fire_kill(&mut self, point: KillPoint) -> Result<(), GenerateError> {
        match self.kill.as_mut() {
            Some(kill) => kill.check(point),
            None => Ok(()),
        }
    }

    /// The cost-aware pipeline (§5) as a resumable state machine. Fresh
    /// runs enter at [`Stage::Profile`]; resume enters at the stage after
    /// the snapshot's boundary with `profiled`/`oracle_state` restored.
    /// Every boundary writes a checkpoint *before* the kill switch can
    /// fire there, so a killed run always resumes at the point it died.
    #[allow(clippy::too_many_arguments)]
    fn run_cost_aware(
        &mut self,
        stage: Stage,
        profiled: Vec<ProfiledTemplate>,
        oracle_state: Option<&OracleState>,
        target: &TargetDistribution,
        cost_type: CostType,
        start: Instant,
        mut report: GenerationReport,
    ) -> Result<GenerationReport, GenerateError> {
        let width = target.intervals.width();
        let total_queries = target.total() as usize;
        let oracle = CostOracle::new(self.db, self.config.threads)
            .with_prepared(self.config.use_prepared)
            .with_columnar(self.config.use_columnar);
        if let Some(state) = oracle_state {
            oracle.restore_state(state).map_err(GenerateError::Checkpoint)?;
        }
        // Propagate the resolved worker count into the surrogate forest.
        let mut search = self.config.search.clone();
        search.bo.threads = oracle.threads();
        let mut ckpt = self.checkpointer(target, cost_type)?;

        let mut profiled = profiled;
        let mut stage = stage;
        loop {
            stage = match stage {
                Stage::Profile { seeds } => {
                    // Boundary: Algorithm 1 done, oracle untouched, RNG
                    // positioned before the profile-seed draw.
                    self.write_checkpoint(
                        &mut ckpt,
                        None,
                        &report,
                        TemplatePool::Seeds(
                            seeds.iter().map(|t| t.sql().to_string()).collect(),
                        ),
                        PhaseState::AfterTemplates,
                    )?;
                    self.fire_kill(KillPoint::AfterTemplates)?;

                    // Phase 2: profiling (§5.1).
                    // detlint::allow(ambient_nondet): phase timing is reporting-only
                    #[allow(clippy::disallowed_methods)]
                    let phase_start = Instant::now();
                    let profile_seed: u64 = self.rng.gen();
                    profiled = profile_batch(
                        &oracle,
                        seeds,
                        cost_type,
                        total_queries,
                        self.config.profiling_fraction,
                        profile_seed,
                    );
                    report.phases.profiling += phase_start.elapsed();
                    let after_profiling = coverage(&profiled, target);
                    report.distance_series.push((
                        start.elapsed().as_secs_f64(),
                        wasserstein_distance(&target.counts, &after_profiling, width),
                    ));
                    Stage::Refine { round: 1 }
                }

                Stage::Refine { round } => {
                    if round == 1 {
                        self.write_checkpoint(
                            &mut ckpt,
                            Some(&oracle),
                            &report,
                            pool_of(&profiled),
                            PhaseState::AfterProfiling,
                        )?;
                        self.fire_kill(KillPoint::AfterProfiling)?;
                    }
                    // Phase 3: refinement & pruning (Algorithm 2) — the
                    // initial pass at round 1, retry passes after a search
                    // round skipped intervals.
                    // detlint::allow(ambient_nondet): phase timing is reporting-only
                    #[allow(clippy::disallowed_methods)]
                    let phase_start = Instant::now();
                    if self.config.enable_refine {
                        let outcome = refine_and_prune(
                            &oracle,
                            &mut self.llm,
                            &mut profiled,
                            target,
                            cost_type,
                            &self.config.refine,
                            &mut self.rng,
                        );
                        report.n_refined_templates += outcome.accepted;
                        report.degradation.merge(&outcome.degradation);
                    }
                    report.phases.refinement += phase_start.elapsed();
                    if profiled.is_empty() {
                        return Err(GenerateError::NoValidTemplates);
                    }
                    self.write_checkpoint(
                        &mut ckpt,
                        Some(&oracle),
                        &report,
                        pool_of(&profiled),
                        PhaseState::AfterRefine { round: round as u64 },
                    )?;
                    self.fire_kill(KillPoint::AfterRefine)?;
                    Stage::Search { round, sched: None }
                }

                Stage::Search { round, sched } => {
                    // Phase 4: BO predicate search (Algorithm 3). The
                    // naive ablation has no round boundaries, so it is
                    // never checkpointed mid-search (its phase-boundary
                    // snapshots still work).
                    // detlint::allow(ambient_nondet): phase timing is reporting-only
                    #[allow(clippy::disallowed_methods)]
                    let phase_start = Instant::now();
                    let mut series: Vec<(f64, f64)> = Vec::new();
                    let mut push_progress = |d: &[f64]| {
                        series.push((
                            start.elapsed().as_secs_f64(),
                            wasserstein_distance(&target.counts, d, width),
                        ));
                    };

                    let result = if !search.use_bo {
                        if sched.is_some() {
                            return Err(GenerateError::Checkpoint(
                                "mid-search snapshot requires the BO search \
                                 path, but this config has use_bo = false"
                                    .into(),
                            ));
                        }
                        let state = seed_search_state(&profiled, target);
                        push_progress(&state.d);
                        trace_pool(&profiled, &state);
                        naive_random_search(
                            &oracle,
                            &mut profiled,
                            target,
                            cost_type,
                            &search,
                            &mut self.rng,
                            state,
                            &mut push_progress,
                        )
                    } else {
                        let (resume, state, search_seed) = match &sched {
                            Some(s) => {
                                let (resume, state) = sched_resume_of(s);
                                (Some(resume), state, s.search_seed)
                            }
                            None => {
                                let state = seed_search_state(&profiled, target);
                                push_progress(&state.d);
                                trace_pool(&profiled, &state);
                                // Drawn here (not inside the scheduler) so
                                // the master-RNG stream stays byte-compatible
                                // and the snapshot taken above precedes it.
                                let search_seed: u64 = self.rng.gen();
                                (None, state, search_seed)
                            }
                        };
                        let mut rounds_since: u64 = 0;
                        let mut pending: Option<GenerateError> = None;
                        let result = deficit_schedule(
                            &oracle,
                            &mut profiled,
                            target,
                            cost_type,
                            &search,
                            search_seed,
                            resume,
                            state,
                            &mut push_progress,
                            |snap, templates| {
                                rounds_since += 1;
                                let due = ckpt
                                    .as_ref()
                                    .is_some_and(|c| rounds_since >= c.every);
                                if due {
                                    rounds_since = 0;
                                    let pool = TemplatePool::Profiled(
                                        templates.iter().map(|t| t.to_state()).collect(),
                                    );
                                    let phase = PhaseState::MidSearch {
                                        round: round as u64,
                                        sched: sched_state_of(snap),
                                    };
                                    if let Err(e) = self.write_checkpoint(
                                        &mut ckpt,
                                        Some(&oracle),
                                        &report,
                                        pool,
                                        phase,
                                    ) {
                                        pending = Some(e);
                                        return RoundControl::Stop;
                                    }
                                }
                                // The kill fires at a checkpointed round
                                // boundary (or any boundary when
                                // checkpointing is off).
                                if due || ckpt.is_none() {
                                    if let Err(e) =
                                        self.fire_kill(KillPoint::MidSearch)
                                    {
                                        pending = Some(e);
                                        return RoundControl::Stop;
                                    }
                                }
                                RoundControl::Continue
                            },
                        );
                        if let Some(e) = pending {
                            return Err(e);
                        }
                        result
                    };

                    report.distance_series.extend(series);
                    report.phases.predicate_search += phase_start.elapsed();
                    self.write_checkpoint(
                        &mut ckpt,
                        Some(&oracle),
                        &report,
                        pool_of(&profiled),
                        PhaseState::AfterSearch {
                            round: round as u64,
                            result: stored_result_of(&result),
                        },
                    )?;
                    self.fire_kill(KillPoint::AfterSearch)?;
                    Stage::Decide { round, result }
                }

                Stage::Decide { round, result } => {
                    // "This process continues until the generated cost
                    // distribution adequately matches the target" (§5.3) —
                    // bounded by `max_outer_rounds`.
                    let distance = wasserstein_distance(
                        &target.counts,
                        &result.distribution,
                        width,
                    );
                    let can_retry = distance > 0.0
                        && !result.skipped.is_empty()
                        && self.config.enable_refine
                        && round < self.config.max_outer_rounds;
                    if can_retry {
                        Stage::Refine { round: round + 1 }
                    } else {
                        Stage::Finish { result }
                    }
                }

                Stage::Finish { result } => {
                    // Phase 5: post-convergence amplification (ROADMAP
                    // item 1) — stream cost-matched queries from the
                    // converged state through the prepared plans. The
                    // stage seed is drawn only when the stage runs, after
                    // the search has finished, so enabling it never
                    // perturbs the BO workload. Output goes through an
                    // AtomicFile: any pre-existing file at the target path
                    // survives a crash or error mid-emission untouched.
                    if let Some(amplify_config) = self.config.amplify.clone() {
                        // detlint::allow(ambient_nondet): phase timing is reporting-only
                        #[allow(clippy::disallowed_methods)]
                        let amplify_start = Instant::now();
                        let amplify_seed: u64 = self.rng.gen();
                        let amplify_stats = match &amplify_config.out {
                            Some(path) => {
                                let mut file = AtomicFile::create(path)
                                    .map_err(|e| GenerateError::AmplifyIo(e.to_string()))?;
                                let stats = amplify_workload(
                                    &oracle,
                                    &profiled,
                                    target,
                                    cost_type,
                                    &amplify_config,
                                    amplify_seed,
                                    &mut file,
                                )
                                .map_err(|e| GenerateError::AmplifyIo(e.to_string()))?;
                                file.commit().map_err(|e| {
                                    GenerateError::AmplifyIo(format!(
                                        "{}: {e}",
                                        path.display()
                                    ))
                                })?;
                                stats
                            }
                            None => amplify_workload(
                                &oracle,
                                &profiled,
                                target,
                                cost_type,
                                &amplify_config,
                                amplify_seed,
                                std::io::sink(),
                            )
                            .map_err(|e| GenerateError::AmplifyIo(e.to_string()))?,
                        };
                        report.amplify = Some(amplify_stats);
                        report.phases.amplification += amplify_start.elapsed();
                    }

                    report.n_final_templates = profiled.len();
                    report.evaluations =
                        profiled.iter().map(|t| t.consumed as usize).sum();
                    let stats = oracle.stats();
                    report.oracle_probes = stats.logical_probes;
                    report.oracle_physical_evals = stats.physical_evals;
                    report.oracle_cache_hits = stats.cache_hits;
                    report.oracle_prepared_hits = stats.prepared_hits;
                    report.oracle_prepared_misses = stats.prepared_misses;
                    report.oracle_evictions = stats.evictions;
                    report.scheduler_rounds = stats.scheduler_rounds;
                    report.scheduler_tasks = stats.scheduler_tasks;
                    report.scheduler_peak_tasks = stats.scheduler_peak_tasks;
                    report.scheduler_overadmissions = stats.scheduler_overadmissions;
                    report.final_distance = wasserstein_distance(
                        &target.counts,
                        &result.distribution,
                        width,
                    );
                    report.distribution = result.distribution;
                    report.skipped_intervals = result.skipped;
                    report.queries = result.queries;
                    report.llm_usage = self.llm.usage();
                    report.resilience = self.llm.resilience();
                    report.elapsed = start.elapsed();
                    return Ok(report);
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::redset::redset_template_specs;
    use workload::CostIntervals;

    fn tpch() -> Database {
        minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
    }

    #[test]
    fn end_to_end_uniform_cardinality_converges() {
        let db = tpch();
        let target =
            TargetDistribution::uniform(CostIntervals::new(0.0, 5000.0, 5), 100);
        let specs = redset_template_specs(3);
        let mut barber = SqlBarber::new(&db, SqlBarberConfig::fast_test());
        let report =
            barber.generate(&specs[..8], &target, CostType::Cardinality).unwrap();
        assert!(
            report.final_distance < 300.0,
            "distance {} (d={:?}, skipped={:?})",
            report.final_distance,
            report.distribution,
            report.skipped_intervals
        );
        assert!(report.queries.len() >= 90, "only {} queries", report.queries.len());
        // distance series is non-increasing apart from float noise
        let first = report.distance_series.first().unwrap().1;
        let last = report.distance_series.last().unwrap().1;
        assert!(last <= first);
        assert!(report.llm_usage.requests > 0);
        assert_eq!(report.alignment_accuracy, 1.0);
    }

    #[test]
    fn templates_can_be_supplied_directly() {
        let db = tpch();
        let target =
            TargetDistribution::uniform(CostIntervals::new(0.0, 5000.0, 5), 40);
        let templates = vec![
            sqlkit::parse_template(
                "SELECT l.l_orderkey FROM lineitem AS l WHERE l.l_extendedprice > {p_1}",
            )
            .unwrap(),
        ];
        let mut barber = SqlBarber::new(&db, SqlBarberConfig::fast_test());
        let report = barber
            .generate_from_templates(templates, &target, CostType::Cardinality)
            .unwrap();
        assert!(report.queries.len() >= 30, "{} queries", report.queries.len());
    }

    #[test]
    fn empty_inputs_error() {
        let db = tpch();
        let target =
            TargetDistribution::uniform(CostIntervals::paper_default(5), 10);
        let mut barber = SqlBarber::new(&db, SqlBarberConfig::fast_test());
        assert!(matches!(
            barber.generate_from_templates(vec![], &target, CostType::Cardinality),
            Err(GenerateError::NoValidTemplates)
        ));
    }

    #[test]
    fn ablations_are_wired() {
        let config = SqlBarberConfig::fast_test().without_refinement();
        assert!(!config.enable_refine);
        let config = SqlBarberConfig::fast_test().with_random_search();
        assert!(!config.search.use_bo);
    }

    #[test]
    fn kill_switch_specs_parse() {
        let kill = KillSwitch::parse("mid-search").unwrap();
        assert_eq!(kill.point, KillPoint::MidSearch);
        assert_eq!(kill.mode, KillMode::Unwind);
        let kill = KillSwitch::parse("after-refine:abort").unwrap();
        assert_eq!(kill.point, KillPoint::AfterRefine);
        assert_eq!(kill.mode, KillMode::Abort);
        assert!(KillSwitch::parse("nowhere").is_err());
        assert!(KillSwitch::parse("mid-search:gently").is_err());
    }

    #[test]
    fn fingerprint_ignores_plumbing_but_not_computation() {
        let target =
            TargetDistribution::uniform(CostIntervals::new(0.0, 5000.0, 5), 40);
        let base = SqlBarberConfig::fast_test();
        let fp = config_fingerprint(&base, &target, CostType::Cardinality);

        let mut with_ckpt = base.clone();
        with_ckpt.checkpoint =
            Some(CheckpointConfig { dir: PathBuf::from("/tmp/x"), every: 8 });
        assert_eq!(fp, config_fingerprint(&with_ckpt, &target, CostType::Cardinality));

        let mut other_seed = base.clone();
        other_seed.seed = 43;
        assert_ne!(fp, config_fingerprint(&other_seed, &target, CostType::Cardinality));
        assert_ne!(fp, config_fingerprint(&base, &target, CostType::PlanCost));
    }

    fn flat(report: &GenerationReport) -> Vec<(String, u64)> {
        report.queries.iter().map(|q| (q.sql.clone(), q.cost.to_bits())).collect()
    }

    #[test]
    fn kill_and_resume_reproduces_the_uninterrupted_run() {
        let db = tpch();
        let target =
            TargetDistribution::uniform(CostIntervals::new(0.0, 5000.0, 5), 60);
        let template = || {
            vec![sqlkit::parse_template(
                "SELECT l.l_orderkey FROM lineitem AS l WHERE l.l_extendedprice > {p_1}",
            )
            .unwrap()]
        };
        let baseline = SqlBarber::new(&db, SqlBarberConfig::fast_test())
            .generate_from_templates(template(), &target, CostType::Cardinality)
            .unwrap();

        let dir = std::env::temp_dir()
            .join(format!("sqlbarber-driver-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = SqlBarberConfig::fast_test();
        config.checkpoint = Some(CheckpointConfig { dir: dir.clone(), every: 2 });
        let err = SqlBarber::new(&db, config.clone())
            .with_kill_switch(KillSwitch::parse("mid-search").unwrap())
            .generate_from_templates(template(), &target, CostType::Cardinality)
            .unwrap_err();
        assert!(matches!(err, GenerateError::Killed(_)), "{err}");

        let resumed = SqlBarber::new(&db, config)
            .resume(&dir, &target, CostType::Cardinality)
            .unwrap();
        assert_eq!(flat(&baseline), flat(&resumed));
        assert_eq!(
            baseline.final_distance.to_bits(),
            resumed.final_distance.to_bits()
        );
        assert_eq!(baseline.scheduler_rounds, resumed.scheduler_rounds);
        assert_eq!(baseline.oracle_probes, resumed.oracle_probes);
        assert_eq!(baseline.oracle_cache_hits, resumed.oracle_cache_hits);
        assert_eq!(baseline.evaluations, resumed.evaluations);
        assert_eq!(baseline.n_refined_templates, resumed.n_refined_templates);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_refuses_a_different_configuration() {
        let db = tpch();
        let target =
            TargetDistribution::uniform(CostIntervals::new(0.0, 5000.0, 5), 40);
        let dir = std::env::temp_dir()
            .join(format!("sqlbarber-driver-fp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = SqlBarberConfig::fast_test();
        config.checkpoint = Some(CheckpointConfig { dir: dir.clone(), every: 4 });
        let template = vec![sqlkit::parse_template(
            "SELECT l.l_orderkey FROM lineitem AS l WHERE l.l_extendedprice > {p_1}",
        )
        .unwrap()];
        SqlBarber::new(&db, config.clone())
            .generate_from_templates(template, &target, CostType::Cardinality)
            .unwrap();

        let mut other = config.clone();
        other.seed = 7;
        let err = SqlBarber::new(&db, other)
            .resume(&dir, &target, CostType::Cardinality)
            .unwrap_err();
        assert!(matches!(err, GenerateError::Checkpoint(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
