//! Adaptive template refinement and pruning (§5.2, Algorithm 2).
//!
//! Two phases over the coverage vector `c` (Eq. 1):
//!
//! * **Phase 1** (τ₁ = 0.2, k₁ = 3, m₁ = 3, no history): intervals whose
//!   coverage falls below `τ₁ · d*_j` are *missing*; the top-m templates
//!   by closeness (Eq. 2) are refined toward each.
//! * **Phase 2** (τ₂ = 0.1, k₂ = 5, m₂ = 5, with history): intervals that
//!   remain under-covered are *difficult*; refinement prompts now include
//!   the interval's previous attempts, leveraging in-context learning.
//!
//! Newly refined templates are profiled and admitted only if they pass
//! the pruning rule (Eq. 4): they hit an underrepresented interval, or
//! they reduce the Wasserstein distance of the coverage distribution.
//!
//! Refinement is the most LLM-hungry phase, so it degrades gracefully
//! under transport failures: a failed or malformed refine call just skips
//! that candidate, and an interval where *no* candidate produced a usable
//! response is recorded as abandoned — the outer `for _iter in 0..k` loop
//! naturally retries it next round if it is still under-covered.

use crate::cost::CostType;
use crate::oracle::CostOracle;
use crate::profiler::{profile_template, ProfiledTemplate};
use crate::report::DegradationStats;
use llm::protocol::{parse_sql_response, PromptBuilder, TASK_REFINE};
use llm::{LanguageModel, LlmError};
use rand::rngs::StdRng;
use sqlkit::parse_template;
use std::collections::BTreeMap;
use workload::{wasserstein_distance, TargetDistribution};

/// Phase parameters `(τ, k, m, use_history)`.
pub type Phase = (f64, usize, usize, bool);

/// Algorithm 2 configuration; defaults are the paper's constants.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineConfig {
    pub phases: Vec<Phase>,
    /// Profiling samples per refined template.
    pub profile_samples: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            phases: vec![(0.2, 3, 3, false), (0.1, 5, 5, true)],
            profile_samples: 10,
        }
    }
}

/// Summary of one refinement run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefineOutcome {
    /// Templates accepted into the pool.
    pub accepted: usize,
    /// Refined templates rejected by the pruning rule (Eq. 4).
    pub pruned: usize,
    /// LLM refinement calls made.
    pub refine_calls: usize,
    /// Transport failures and protocol breaks absorbed along the way.
    pub degradation: DegradationStats,
}

/// Coverage vector `c` (Eq. 1) over the target's intervals.
pub fn coverage(templates: &[ProfiledTemplate], target: &TargetDistribution) -> Vec<f64> {
    let mut counts = vec![0.0; target.intervals.count];
    for template in templates {
        for &cost in &template.costs {
            if let Some(j) = target.intervals.interval_of(cost) {
                counts[j] += 1.0;
            }
        }
    }
    counts
}

/// Run Algorithm 2 in place over the template pool.
#[allow(clippy::too_many_arguments)]
pub fn refine_and_prune<M: LanguageModel>(
    oracle: &CostOracle,
    llm: &mut M,
    templates: &mut Vec<ProfiledTemplate>,
    target: &TargetDistribution,
    cost_type: CostType,
    config: &RefineConfig,
    rng: &mut StdRng,
) -> RefineOutcome {
    let mut outcome = RefineOutcome::default();
    // History H: interval → previous refinement attempts (sql, median cost).
    // BTreeMap: keyed access only today, but anything feeding prompt
    // construction stays ordered by policy (HashMap iteration order once
    // leaked into reports from this module's neighbor).
    let mut history: BTreeMap<usize, Vec<(String, f64)>> = BTreeMap::new();
    let schema = oracle.db().schema_summary();

    for &(tau, k, m, use_history) in &config.phases {
        for _iter in 0..k {
            let cover = coverage(templates, target);
            let low: Vec<usize> = (0..target.intervals.count)
                .filter(|&j| target.counts[j] > 0.0 && cover[j] < tau * target.counts[j])
                .collect();
            if low.is_empty() {
                break;
            }
            refine_for_intervals(
                oracle,
                llm,
                templates,
                target,
                cost_type,
                &low,
                m,
                use_history,
                &mut history,
                &schema,
                config.profile_samples,
                rng,
                &mut outcome,
            );
        }
    }

    // Final sweep (Figure 4, Step 3): drop templates that cannot produce
    // any cost inside the working range at all.
    templates.retain(|t| {
        !t.costs.is_empty()
            && t.costs.iter().any(|&c| target.intervals.interval_of(c).is_some())
    });
    outcome
}

/// The `RefineForIntervals` function of Algorithm 2 (lines 12–32).
#[allow(clippy::too_many_arguments)]
fn refine_for_intervals<M: LanguageModel>(
    oracle: &CostOracle,
    llm: &mut M,
    templates: &mut Vec<ProfiledTemplate>,
    target: &TargetDistribution,
    cost_type: CostType,
    target_intervals: &[usize],
    m: usize,
    use_history: bool,
    history: &mut BTreeMap<usize, Vec<(String, f64)>>,
    schema: &str,
    profile_samples: usize,
    rng: &mut StdRng,
    outcome: &mut RefineOutcome,
) {
    for &j in target_intervals {
        let (lo, hi) = target.intervals.bounds(j);
        // Whether any candidate for this interval yielded a usable
        // response; when none does, the interval is abandoned this round.
        let mut any_response = false;
        let calls_before = outcome.refine_calls;

        // Rank existing templates by closeness to interval j (Eq. 2).
        let mut scored: Vec<(usize, f64)> = templates
            .iter()
            .enumerate()
            .map(|(idx, t)| (idx, t.closeness(lo, hi)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let top: Vec<usize> = scored.iter().take(m).map(|(idx, _)| *idx).collect();

        for template_idx in top {
            let base = &templates[template_idx];
            let mut prompt = PromptBuilder::new(TASK_REFINE)
                .schema(schema)
                .template(&base.template.sql())
                .target_interval(lo, hi)
                .profile(&base.costs);
            if use_history {
                if let Some(entries) = history.get(&j) {
                    if !entries.is_empty() {
                        prompt = prompt.history(entries);
                    }
                }
            }
            outcome.refine_calls += 1;
            let response = match llm.complete(&prompt.build()) {
                Ok(response) => response,
                Err(LlmError::Malformed { .. }) => {
                    outcome.degradation.malformed_responses += 1;
                    continue;
                }
                Err(_) => {
                    outcome.degradation.llm_failures += 1;
                    continue;
                }
            };
            let Some(sql) = parse_sql_response(&response) else {
                outcome.degradation.malformed_responses += 1;
                continue;
            };
            any_response = true;
            let Ok(new_template) = parse_template(&sql) else { continue };
            if oracle.db().validate_template(&new_template).is_err() {
                continue;
            }
            let profiled =
                profile_template(oracle, new_template, cost_type, profile_samples, rng);

            if should_prune(&profiled, templates, target, target_intervals) {
                outcome.pruned += 1;
            } else {
                history.entry(j).or_default().push((sql, profiled.median_cost()));
                templates.push(profiled);
                outcome.accepted += 1;
            }
        }
        if !any_response && outcome.refine_calls > calls_before {
            // Every candidate for this interval was lost to the transport
            // or to protocol breaks; the outer round retries it while it
            // stays under-covered.
            outcome.degradation.abandoned_intervals += 1;
        }
    }
}

/// The pruning rule (Eq. 4): keep a refined template when it hits an
/// underrepresented interval or lowers the distribution distance.
fn should_prune(
    candidate: &ProfiledTemplate,
    pool: &[ProfiledTemplate],
    target: &TargetDistribution,
    target_intervals: &[usize],
) -> bool {
    // Case 1: any observed cost lands in a target (underrepresented)
    // interval.
    for &cost in &candidate.costs {
        if let Some(j) = target.intervals.interval_of(cost) {
            if target_intervals.contains(&j) {
                return false;
            }
        }
    }
    // Case 2: adding the candidate's contribution lowers D(d_c + v, d*).
    let current = coverage(pool, target);
    let width = target.intervals.width();
    let before = wasserstein_distance(&target.counts, &current, width);
    let mut after_counts = current;
    for &cost in &candidate.costs {
        if let Some(j) = target.intervals.interval_of(cost) {
            after_counts[j] += 1.0;
        }
    }
    let after = wasserstein_distance(&target.counts, &after_counts, width);
    after >= before
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::SyntheticLlm;
    use rand::SeedableRng;
    use workload::{CostIntervals, TargetDistribution};

    fn tpch() -> minidb::Database {
        minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
    }

    fn pool(oracle: &CostOracle, rng: &mut StdRng) -> Vec<ProfiledTemplate> {
        [
            "SELECT l.l_orderkey, l.l_extendedprice FROM lineitem AS l \
             WHERE l.l_extendedprice > {p_1}",
            "SELECT o.o_orderkey FROM orders AS o WHERE o.o_totalprice > {p_1}",
        ]
        .iter()
        .map(|sql| {
            profile_template(
                oracle,
                parse_template(sql).unwrap(),
                CostType::Cardinality,
                12,
                rng,
            )
        })
        .collect()
    }

    #[test]
    fn coverage_counts_in_range_costs_only() {
        let target =
            TargetDistribution::uniform(CostIntervals::paper_default(10), 100);
        let t = ProfiledTemplate {
            template: parse_template("SELECT * FROM t").unwrap(),
            space: crate::sampler::PlaceholderSpace {
                dims: vec![],
                space: Default::default(),
            },
            costs: vec![500.0, 1500.0, 50_000.0],
            evaluations: vec![],
            consumed: 3.0,
        };
        let cover = coverage(&[t], &target);
        assert_eq!(cover[0], 1.0);
        assert_eq!(cover[1], 1.0);
        assert_eq!(cover.iter().sum::<f64>(), 2.0);
    }

    #[test]
    fn refinement_improves_coverage_of_missing_intervals() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let mut rng = StdRng::seed_from_u64(17);
        let mut templates = pool(&oracle, &mut rng);
        let target =
            TargetDistribution::uniform(CostIntervals::paper_default(10), 200);
        let before_cover = coverage(&templates, &target);
        let missing_before =
            before_cover.iter().filter(|&&c| c == 0.0).count();

        let mut llm = SyntheticLlm::reliable(17);
        let outcome = refine_and_prune(
            &oracle,
            &mut llm,
            &mut templates,
            &target,
            CostType::Cardinality,
            &RefineConfig::default(),
            &mut rng,
        );
        let after_cover = coverage(&templates, &target);
        let missing_after = after_cover.iter().filter(|&&c| c == 0.0).count();
        assert!(outcome.refine_calls > 0);
        assert!(
            missing_after <= missing_before,
            "missing {missing_before} → {missing_after}"
        );
        assert!(outcome.accepted > 0, "no refined template accepted");
    }

    #[test]
    fn transport_faults_skip_intervals_without_aborting() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let mut rng = StdRng::seed_from_u64(29);
        let mut templates = pool(&oracle, &mut rng);
        let target =
            TargetDistribution::uniform(CostIntervals::paper_default(10), 200);
        // A lossy transport with no retry layer: most refine calls die.
        let mut llm = llm::FaultyTransport::new(
            SyntheticLlm::reliable(29),
            llm::TransportFaultConfig::uniform(0.6),
            57,
        );
        let outcome = refine_and_prune(
            &oracle,
            &mut llm,
            &mut templates,
            &target,
            CostType::Cardinality,
            &RefineConfig::default(),
            &mut rng,
        );
        assert!(outcome.refine_calls > 0);
        assert!(
            outcome.degradation.llm_failures > 0,
            "expected lost calls at 60% faults: {:?}",
            outcome.degradation
        );
        // The pool survives and templates stay in-range.
        assert!(!templates.is_empty());
    }

    #[test]
    fn pruning_rejects_useless_candidates() {
        let target =
            TargetDistribution::uniform(CostIntervals::paper_default(10), 100);
        let make = |costs: Vec<f64>| ProfiledTemplate {
            template: parse_template("SELECT * FROM t").unwrap(),
            space: crate::sampler::PlaceholderSpace {
                dims: vec![],
                space: Default::default(),
            },
            costs,
            evaluations: vec![],
            consumed: 1.0,
        };
        let pool = vec![make(vec![500.0; 20])];
        // candidate costs land nowhere near the range: prune
        assert!(should_prune(&make(vec![90_000.0]), &pool, &target, &[5]));
        // candidate hits the underrepresented interval 5: keep
        assert!(!should_prune(&make(vec![5_500.0]), &pool, &target, &[5]));
        // candidate hits interval 1 (not targeted, but empty): it reduces
        // the Wasserstein distance, so Eq. 4's second clause keeps it.
        assert!(!should_prune(&make(vec![1_500.0]), &pool, &target, &[5]));
    }

    #[test]
    fn out_of_range_templates_are_swept() {
        let db = tpch();
        let oracle = CostOracle::new(&db, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let mut templates = pool(&oracle, &mut rng);
        templates.push(ProfiledTemplate {
            template: parse_template("SELECT * FROM t").unwrap(),
            space: crate::sampler::PlaceholderSpace {
                dims: vec![],
                space: Default::default(),
            },
            costs: vec![1e9],
            evaluations: vec![],
            consumed: 1.0,
        });
        let before = templates.len();
        let target =
            TargetDistribution::uniform(CostIntervals::paper_default(10), 50);
        let mut llm = SyntheticLlm::reliable(5);
        refine_and_prune(
            &oracle,
            &mut llm,
            &mut templates,
            &target,
            CostType::Cardinality,
            &RefineConfig { phases: vec![], profile_samples: 5 },
            &mut rng,
        );
        assert!(templates.len() < before + 1, "sweep should drop the outlier");
        assert!(templates
            .iter()
            .all(|t| t.costs.iter().any(|&c| c <= 10_000.0)));
    }
}
