//! Join path generation (§4 Step 2).
//!
//! The template generator enumerates join paths over the database's
//! foreign-key graph and, per template, randomly samples one path with the
//! requested number of joins. Randomness buys diversity across templates,
//! prompt compression (only the sampled path's tables go into the prompt),
//! and robustness to long-context degradation — the three §4 arguments.

use minidb::Database;
use rand::rngs::StdRng;
use rand::Rng;

/// One join step: `(table1, column1, table2, column2)`.
pub type JoinStep = (String, String, String, String);

/// Sample a random simple join path with exactly `num_joins` steps from
/// the FK graph, by random walk with restarts. Returns `None` when the
/// graph cannot support such a path (e.g. more joins than edges, or no
/// FK edges at all).
pub fn sample_join_path(db: &Database, num_joins: u32, rng: &mut StdRng) -> Option<Vec<JoinStep>> {
    if num_joins == 0 {
        return Some(Vec::new());
    }
    let edges: Vec<JoinStep> = db
        .foreign_keys()
        .iter()
        .map(|fk| {
            (fk.table.clone(), fk.column.clone(), fk.ref_table.clone(), fk.ref_column.clone())
        })
        .collect();
    if edges.is_empty() {
        return None;
    }

    // Size-aware edge weights: an LLM prompted with table sizes gravitates
    // to the fact-table joins a production workload would exercise; pure
    // uniform edge choice would anchor most templates on tiny dimension
    // tables.
    let rows = |table: &str| db.stats(table).map(|s| s.row_count as f64).unwrap_or(1.0);
    let edge_weight =
        |step: &JoinStep| (rows(&step.0) + rows(&step.2)).max(1.0).sqrt();

    'attempt: for _ in 0..64 {
        let mut path: Vec<JoinStep> = Vec::with_capacity(num_joins as usize);
        let mut tables: Vec<String> = Vec::new();
        let first = pick_weighted(&edges, edge_weight, rng);
        if first.0 == first.2 {
            continue; // self-referencing edge cannot start a simple path
        }
        path.push(first.clone());
        tables.push(first.0.clone());
        tables.push(first.2.clone());

        while path.len() < num_joins as usize {
            // Edges touching exactly one bound table (grow the tree).
            let frontier: Vec<JoinStep> = edges
                .iter()
                .filter(|(t, _, rt, _)| {
                    tables.iter().any(|b| b == t) != tables.iter().any(|b| b == rt)
                })
                .cloned()
                .collect();
            if frontier.is_empty() {
                continue 'attempt;
            }
            let step = pick_weighted(&frontier, edge_weight, rng).clone();
            let new_table =
                if tables.contains(&step.0) { step.2.clone() } else { step.0.clone() };
            tables.push(new_table);
            path.push(step);
        }
        return Some(path);
    }
    None
}

/// Weighted random choice (weights need not be normalized).
fn pick_weighted<'a, T>(
    items: &'a [T],
    weight: impl Fn(&T) -> f64,
    rng: &mut StdRng,
) -> &'a T {
    let total: f64 = items.iter().map(&weight).sum();
    if total <= 0.0 {
        return &items[rng.gen_range(0..items.len())];
    }
    let mut roll = rng.gen::<f64>() * total;
    for item in items {
        roll -= weight(item);
        if roll <= 0.0 {
            return item;
        }
    }
    items.last().expect("nonempty")
}

/// Distinct tables touched by a path (`num_joins + 1` for simple paths).
pub fn path_tables(path: &[JoinStep]) -> Vec<String> {
    let mut tables = Vec::new();
    for (t1, _, t2, _) in path {
        if !tables.contains(t1) {
            tables.push(t1.clone());
        }
        if !tables.contains(t2) {
            tables.push(t2.clone());
        }
    }
    tables
}

/// Schema summary restricted to the path's tables (prompt compression: the
/// paper includes "only those [tables and columns] involved in the sampled
/// join path"). With an empty path the full summary is returned.
pub fn compressed_summary(db: &Database, path: &[JoinStep]) -> String {
    if path.is_empty() {
        return db.schema_summary();
    }
    let keep = path_tables(path);
    let full = db.schema_summary();
    let mut out = String::new();
    let mut keeping = false;
    let mut in_fks = false;
    for line in full.lines() {
        if line.starts_with("Database:") {
            out.push_str(line);
            out.push('\n');
        } else if let Some(rest) = line.strip_prefix("Table ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            keeping = keep.iter().any(|t| t == name);
            in_fks = false;
            if keeping {
                out.push_str(line);
                out.push('\n');
            }
        } else if line.starts_with("Foreign keys:") {
            in_fks = true;
            out.push_str(line);
            out.push('\n');
        } else if in_fks {
            // keep FK lines between kept tables
            let relevant = keep.iter().filter(|t| line.contains(t.as_str())).count() >= 2
                || keep.iter().any(|t| {
                    line.trim().starts_with(&format!("{t}."))
                        && keep.iter().any(|u| line.contains(&format!("-> {u}.")))
                });
            if relevant {
                out.push_str(line);
                out.push('\n');
            }
        } else if keeping {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tpch() -> Database {
        minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
    }

    #[test]
    fn sampled_paths_have_requested_length_and_are_simple() {
        let db = tpch();
        let mut rng = StdRng::seed_from_u64(5);
        for joins in 1..=5u32 {
            let path = sample_join_path(&db, joins, &mut rng)
                .unwrap_or_else(|| panic!("no path with {joins} joins"));
            assert_eq!(path.len(), joins as usize);
            assert_eq!(path_tables(&path).len(), joins as usize + 1, "not simple: {path:?}");
        }
    }

    #[test]
    fn zero_joins_is_an_empty_path() {
        let db = tpch();
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sample_join_path(&db, 0, &mut rng), Some(Vec::new()));
    }

    #[test]
    fn paths_are_diverse_across_samples() {
        let db = tpch();
        let mut rng = StdRng::seed_from_u64(6);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..30 {
            if let Some(path) = sample_join_path(&db, 2, &mut rng) {
                distinct.insert(format!("{path:?}"));
            }
        }
        assert!(distinct.len() >= 5, "only {} distinct paths", distinct.len());
    }

    #[test]
    fn compressed_summary_contains_only_path_tables() {
        let db = tpch();
        let path = vec![(
            "orders".to_string(),
            "o_custkey".to_string(),
            "customer".to_string(),
            "c_custkey".to_string(),
        )];
        let summary = compressed_summary(&db, &path);
        assert!(summary.contains("Table orders"));
        assert!(summary.contains("Table customer"));
        assert!(!summary.contains("Table lineitem"));
        assert!(!summary.contains("Table part "));
        // prompt compression: meaningfully smaller than the full summary
        assert!(summary.len() < db.schema_summary().len() / 2);
        // relevant FK kept
        assert!(summary.contains("orders.o_custkey -> customer.c_custkey"));
    }

    #[test]
    fn imdb_supports_long_paths() {
        let db = minidb::datagen::imdb::generate(minidb::datagen::imdb::ImdbConfig::tiny());
        let mut rng = StdRng::seed_from_u64(9);
        let path = sample_join_path(&db, 5, &mut rng).expect("21-table graph supports 5 joins");
        assert_eq!(path.len(), 5);
    }
}
