//! Property tests for the snapshot codec: encode/decode must round-trip
//! bit for bit, and `decode` must be *total* — arbitrary, truncated, or
//! bit-flipped input always yields a typed error, never a panic or a
//! wild allocation. The checkpoint layer leans on this: a crash can leave
//! any byte soup on disk, and recovery must shrug it off.

use llm::{ModelState, SyntheticState, TokenUsage};
use proptest::prelude::*;
use sqlbarber::snapshot::{
    PhaseState, ReportAcc, SchedState, Snapshot, StoredResult, TemplatePool,
};

/// f64 with the codec's awkward corners: NaN, signed zero, infinities.
fn f64_strategy() -> BoxedStrategy<f64> {
    prop_oneof![
        -1.0e9..1.0e9f64,
        Just(f64::NAN),
        Just(-0.0),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ]
}

fn words_strategy() -> impl Strategy<Value = [u64; 4]> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
        .prop_map(|(a, b, c, d)| [a, b, c, d])
}

fn sql_strategy() -> BoxedStrategy<String> {
    "[a-zA-Z0-9 _'(){}]{0,24}".boxed()
}

fn phase_strategy() -> BoxedStrategy<PhaseState> {
    prop_oneof![
        Just(PhaseState::AfterTemplates),
        Just(PhaseState::AfterProfiling),
        (0u64..10).prop_map(|round| PhaseState::AfterRefine { round }),
        (
            0u64..10,
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec((0u64..8, 0u64..8), 0..4),
            prop::collection::vec(f64_strategy(), 0..4),
            prop::collection::vec((sql_strategy(), f64_strategy()), 0..3),
        )
            .prop_map(|(round, search_seed, next_round, bad, d, queries)| {
                PhaseState::MidSearch {
                    round,
                    sched: SchedState {
                        search_seed,
                        next_round,
                        bad,
                        skip: vec![],
                        failures: vec![],
                        evaluations: 0,
                        d,
                        queries,
                    },
                }
            }),
        (
            0u64..10,
            prop::collection::vec((sql_strategy(), f64_strategy()), 0..3),
            prop::collection::vec(f64_strategy(), 0..4),
        )
            .prop_map(|(round, queries, distribution)| PhaseState::AfterSearch {
                round,
                result: StoredResult {
                    queries,
                    distribution,
                    skipped: vec![],
                    evaluations: 7,
                },
            }),
    ]
}

fn snapshot_strategy() -> BoxedStrategy<Snapshot> {
    (
        any::<u64>(),
        words_strategy(),
        prop::collection::vec((0u32..100, 1u32..5), 0..4),
        prop::collection::vec(sql_strategy(), 0..4),
        prop::collection::vec(any::<u64>(), 0..4),
        phase_strategy(),
    )
        .prop_map(|(fingerprint, rng, attempts, seeds, spec_correct, phase)| {
            Snapshot {
                fingerprint,
                rng,
                llm: ModelState::Synthetic(SyntheticState {
                    rng,
                    usage: TokenUsage {
                        input_tokens: fingerprint.rotate_left(13),
                        output_tokens: fingerprint.rotate_right(7),
                        requests: 3,
                    },
                    attempts,
                }),
                acc: ReportAcc {
                    spec_correct: spec_correct.clone(),
                    syntax_correct: spec_correct,
                    rewrite_total: 9,
                    alignment_accuracy: 0.5,
                    n_seed_templates: 4,
                    n_refined_templates: 1,
                    degradation: [0, 1, 2, 3],
                },
                pool: TemplatePool::Seeds(seeds),
                oracle: None,
                phase,
            }
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any snapshot the driver can construct survives the wire format
    /// unchanged: re-encoding the decoded value reproduces the exact
    /// bytes (byte equality sidesteps NaN's PartialEq problems).
    #[test]
    fn round_trips_bit_for_bit(snapshot in snapshot_strategy()) {
        let bytes = snapshot.encode();
        let back = Snapshot::decode(&bytes).expect("valid encoding decodes");
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Decode is total over arbitrary input.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Snapshot::decode(&bytes);
    }

    /// Every proper prefix of a valid encoding is rejected, not
    /// mis-decoded or panicked on.
    #[test]
    fn truncations_are_rejected(snapshot in snapshot_strategy(), cut in any::<usize>()) {
        let bytes = snapshot.encode();
        let len = cut % bytes.len();
        prop_assert!(Snapshot::decode(&bytes[..len]).is_err());
    }

    /// Any single corrupted byte is detected — header damage by the
    /// magic/version/framing checks, payload damage by the CRC.
    #[test]
    fn bit_flips_are_rejected(
        snapshot in snapshot_strategy(),
        at in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let mut bytes = snapshot.encode();
        let at = at % bytes.len();
        bytes[at] ^= mask;
        prop_assert!(Snapshot::decode(&bytes).is_err());
    }
}
