//! Checkpoint overhead measurement backing the EXPERIMENTS.md entry.
//!
//! Ignored by default (it is a timing run, not an assertion); reproduce
//! the recorded numbers with
//!
//! ```text
//! cargo test -p sqlbarber --test checkpoint_overhead --release -- --ignored --nocapture
//! ```
//!
//! The run is sized to force a multi-round BO search (18 scheduler
//! rounds) so the `--checkpoint-every 8` cadence actually lands
//! mid-search snapshots inside the measured phase. `every: 1` is the
//! stress ceiling: one snapshot per scheduler round.

use sqlbarber::cost::CostType;
use sqlbarber::{CheckpointConfig, SqlBarber, SqlBarberConfig};
use workload::redset::redset_template_specs;
use workload::{CostIntervals, TargetDistribution};

#[test]
#[ignore = "timing measurement, not a correctness gate"]
fn bo_phase_checkpoint_overhead() {
    let db = minidb::datagen::tpch::generate(
        minidb::datagen::tpch::TpchConfig { scale_factor: 0.01, seed: 42 },
    );
    let target =
        TargetDistribution::uniform(CostIntervals::new(0.0, 5000.0, 30), 1200);
    let specs = redset_template_specs(1);
    let run = |checkpoint: Option<CheckpointConfig>| {
        let mut config = SqlBarberConfig { seed: 3, ..Default::default() };
        config.search.rounds_concurrency = 1;
        config.checkpoint = checkpoint;
        let report = SqlBarber::new(&db, config)
            .generate(&specs, &target, CostType::Cardinality)
            .unwrap();
        (report.phases.predicate_search, report.scheduler_rounds)
    };
    let dir = std::env::temp_dir().join("sqlbarber-checkpoint-overhead");
    // Interleaved reps so machine drift hits all three arms equally;
    // summarize with the per-rep median of differences.
    for rep in 0..7 {
        let (bo_none, rounds) = run(None);
        let _ = std::fs::remove_dir_all(&dir);
        let (bo_every8, _) =
            run(Some(CheckpointConfig { dir: dir.clone(), every: 8 }));
        let _ = std::fs::remove_dir_all(&dir);
        let (bo_every1, _) =
            run(Some(CheckpointConfig { dir: dir.clone(), every: 1 }));
        let _ = std::fs::remove_dir_all(&dir);
        println!(
            "rep {rep}: rounds={rounds} bo_none={bo_none:?} \
             bo_every8={bo_every8:?} bo_every1={bo_every1:?}"
        );
    }
}
