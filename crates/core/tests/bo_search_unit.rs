//! Focused tests for Algorithm 3's bookkeeping on synthetic template
//! pools (no LLM involved).

use rand::SeedableRng;
use sqlbarber::bo_search::{bo_predicate_search, BoSearchConfig};
use sqlbarber::cost::CostType;
use sqlbarber::oracle::CostOracle;
use sqlbarber::profiler::{profile_template, ProfiledTemplate};
use sqlkit::parse_template;
use workload::{CostIntervals, TargetDistribution};

fn tpch() -> minidb::Database {
    minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
}

fn pool(oracle: &CostOracle, rng: &mut rand::rngs::StdRng) -> Vec<ProfiledTemplate> {
    [
        "SELECT l.l_orderkey FROM lineitem AS l WHERE l.l_extendedprice > {p_1}",
        "SELECT l.l_orderkey FROM lineitem AS l WHERE l.l_partkey <= {p_1} \
         AND l.l_quantity > {p_2}",
        "SELECT o.o_orderkey FROM orders AS o WHERE o.o_totalprice BETWEEN {p_1} AND {p_2}",
    ]
    .iter()
    .map(|sql| {
        profile_template(
            oracle,
            parse_template(sql).unwrap(),
            CostType::Cardinality,
            12,
            rng,
        )
    })
    .collect()
}

#[test]
fn distribution_counts_equal_accepted_queries_and_respect_targets() {
    let db = tpch();
    let oracle = CostOracle::new(&db, 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut templates = pool(&oracle, &mut rng);
    let target = TargetDistribution::normal(CostIntervals::new(0.0, 6_000.0, 6), 120);
    let result = bo_predicate_search(
        &oracle,
        &mut templates,
        &target,
        CostType::Cardinality,
        &BoSearchConfig::default(),
        &mut rng,
        |_| {},
    );
    assert_eq!(
        result.distribution.iter().sum::<f64>() as usize,
        result.queries.len()
    );
    for (j, (&got, &want)) in
        result.distribution.iter().zip(&target.counts).enumerate()
    {
        assert!(got <= want, "interval {j} overfilled: {got} > {want}");
    }
    // every reported query cost falls in the interval it was counted for
    let mut recount = vec![0.0; target.intervals.count];
    for q in &result.queries {
        let j = target.intervals.interval_of(q.cost).expect("in range");
        recount[j] += 1.0;
    }
    assert_eq!(recount, result.distribution);
}

#[test]
fn progress_callback_sees_monotone_distance() {
    let db = tpch();
    let oracle = CostOracle::new(&db, 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut templates = pool(&oracle, &mut rng);
    let target = TargetDistribution::uniform(CostIntervals::new(0.0, 6_000.0, 4), 60);
    let width = target.intervals.width();
    let mut distances = Vec::new();
    bo_predicate_search(
        &oracle,
        &mut templates,
        &target,
        CostType::Cardinality,
        &BoSearchConfig::default(),
        &mut rng,
        |d| distances.push(workload::wasserstein_distance(&target.counts, d, width)),
    );
    assert!(distances.len() >= 2);
    assert!(
        distances.windows(2).all(|w| w[1] <= w[0] + 1e-9),
        "distance increased: {distances:?}"
    );
}

#[test]
fn search_consumes_template_space_bookkeeping() {
    let db = tpch();
    let oracle = CostOracle::new(&db, 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut templates = pool(&oracle, &mut rng);
    let before: Vec<f64> = templates.iter().map(|t| t.remaining_space()).collect();
    let target = TargetDistribution::uniform(CostIntervals::new(0.0, 6_000.0, 4), 40);
    bo_predicate_search(
        &oracle,
        &mut templates,
        &target,
        CostType::Cardinality,
        &BoSearchConfig::default(),
        &mut rng,
        |_| {},
    );
    // R decreases for at least the templates that were searched
    let after: Vec<f64> = templates.iter().map(|t| t.remaining_space()).collect();
    assert!(
        before.iter().zip(&after).any(|(b, a)| a < b),
        "no space consumed: {before:?} → {after:?}"
    );
    assert!(before.iter().zip(&after).all(|(b, a)| a <= b));
}

#[test]
fn naive_search_respects_its_budget() {
    let db = tpch();
    let oracle = CostOracle::new(&db, 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let mut templates = pool(&oracle, &mut rng);
    // an impossible target (cardinality beyond tiny TPC-H) burns budget
    let target = TargetDistribution::uniform(
        CostIntervals::new(50_000.0, 60_000.0, 2),
        10,
    );
    let config = BoSearchConfig {
        use_bo: false,
        naive_budget_factor: 30.0,
        ..Default::default()
    };
    let result = bo_predicate_search(
        &oracle,
        &mut templates,
        &target,
        CostType::Cardinality,
        &config,
        &mut rng,
        |_| {},
    );
    assert!(result.queries.is_empty());
    assert!(result.evaluations <= 300, "budget exceeded: {}", result.evaluations);
    assert!(result.evaluations >= 250, "budget unused: {}", result.evaluations);
}

#[test]
fn empty_template_pool_terminates_immediately() {
    let db = tpch();
    let oracle = CostOracle::new(&db, 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut templates: Vec<ProfiledTemplate> = Vec::new();
    let target = TargetDistribution::uniform(CostIntervals::new(0.0, 1_000.0, 2), 10);
    let result = bo_predicate_search(
        &oracle,
        &mut templates,
        &target,
        CostType::Cardinality,
        &BoSearchConfig::default(),
        &mut rng,
        |_| {},
    );
    assert!(result.queries.is_empty());
    assert_eq!(result.skipped.len(), 2, "both intervals must be given up");
}
