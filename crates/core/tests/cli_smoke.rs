//! Smoke tests for the `sqlbarber` CLI binary, driven through the real
//! executable (the adoption surface a downstream user touches first).

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sqlbarber"))
}

#[test]
fn help_prints_usage() {
    let out = cli().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("generate"));
    assert!(text.contains("--benchmark"));
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn schema_lists_tpch_tables() {
    let out = cli().args(["schema", "--scale", "0.001"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table lineitem"));
    assert!(text.contains("Foreign keys:"));
}

#[test]
fn explain_renders_a_plan_and_analyze_runs_it() {
    let out = cli()
        .args([
            "explain",
            "--scale",
            "0.001",
            "--sql",
            "SELECT COUNT(*) FROM orders WHERE orders.o_totalprice > 1000",
            "--analyze",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Aggregate"), "{text}");
    assert!(text.contains("Actual: rows="), "{text}");
}

#[test]
fn explain_surfaces_server_errors() {
    let out = cli()
        .args(["explain", "--scale", "0.001", "--sql", "SELECT * FROM ghosts"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("relation \"ghosts\" does not exist"), "{err}");
}

#[test]
fn generate_writes_sql_and_manifest() {
    let dir = std::env::temp_dir().join(format!("sqlbarber_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prefix = dir.join("wl");
    let out = cli()
        .args([
            "generate",
            "--scale",
            "0.001",
            "--queries",
            "40",
            "--intervals",
            "4",
            "--range",
            "0",
            "3000",
            "--spec",
            "tables=1 joins=0; have two predicate values",
            "--out",
            prefix.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let sql = std::fs::read_to_string(format!("{}.sql", prefix.display())).unwrap();
    assert!(sql.contains("SELECT"), "{sql}");
    let manifest: serde_json::Value = serde_json::from_str(
        &std::fs::read_to_string(format!("{}.json", prefix.display())).unwrap(),
    )
    .unwrap();
    assert!(manifest["queries"].as_array().unwrap().len() >= 30);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_from_samples_file() {
    let dir = std::env::temp_dir().join(format!("sqlbarber_cli_s_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let samples = dir.join("costs.txt");
    std::fs::write(&samples, "100\n200\n250\n2400\n2600\n").unwrap();
    let prefix = dir.join("wl");
    let out = cli()
        .args([
            "generate",
            "--scale",
            "0.001",
            "--queries",
            "30",
            "--intervals",
            "3",
            "--range",
            "0",
            "3000",
            "--samples",
            samples.to_str().unwrap(),
            "--spec",
            "tables=1 joins=0",
            "--out",
            prefix.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let manifest: serde_json::Value = serde_json::from_str(
        &std::fs::read_to_string(format!("{}.json", prefix.display())).unwrap(),
    )
    .unwrap();
    // 3/5 samples in interval 0, 0 in interval 1, 2/5 in interval 2
    let target = manifest["target_counts"].as_array().unwrap();
    assert_eq!(target[0], 18.0);
    assert_eq!(target[1], 0.0);
    assert_eq!(target[2], 12.0);
    std::fs::remove_dir_all(&dir).ok();
}
