//! Integration-test crate: all content lives in `tests/`.
