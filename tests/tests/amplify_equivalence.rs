//! Property tests for the amplification engine: the fitted binding
//! generator only produces bindings the columnar batch accepts (no
//! unbound or unknown placeholders), and every query an emission lane
//! accepts recosts into the claimed interval bit-for-bit against the
//! scalar `PreparedTemplate::recost` path, with the rendered text equal
//! to `instantiate(..).to_string()`. A plain N = 100k test then checks
//! the acceptance bar: the amplified histogram's Wasserstein distance to
//! the target (per query) stays within tolerance of the BO-phase
//! workload's distance.

use minidb::{BindingBatch, Database, PreparedTemplate};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlbarber::amplify::{Lane, PairContext};
use sqlbarber::oracle::CostOracle;
use sqlbarber::profiler::{profile_template, ProfiledTemplate};
use sqlbarber::{CostType, SqlBarber, SqlBarberConfig};
use sqlkit::{parse_template, Value};
use std::collections::HashMap;
use std::sync::OnceLock;
use workload::redset::redset_template_specs;
use workload::{CostIntervals, TargetDistribution};

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
    })
}

const SKELETONS: &[&str] = &[
    "SELECT l.l_orderkey FROM lineitem AS l WHERE l.l_extendedprice > {p_1}",
    "SELECT l.l_orderkey FROM lineitem AS l \
     WHERE l.l_quantity > {p_1} AND l.l_extendedprice <= {p_2}",
    "SELECT o.o_orderkey FROM orders AS o \
     WHERE o.o_totalprice > {p_1} AND o.o_orderkey <= {p_2}",
    "SELECT o.o_orderkey, SUM(l.l_extendedprice) \
     FROM orders AS o, lineitem AS l \
     WHERE o.o_orderkey = l.l_orderkey AND l.l_extendedprice > {p_1} \
     GROUP BY o.o_orderkey",
    "SELECT c.c_custkey FROM customer AS c \
     WHERE c.c_mktsegment = {p_1} AND c.c_acctbal > {p_2}",
];

/// Profile a skeleton and build the pair context for its densest
/// interval (the one Algorithm 3 would have converged on hardest).
/// Returns `None` when no interval has conforming support.
fn converged_pair(
    skeleton_idx: usize,
    profile_seed: u64,
    n_intervals: usize,
) -> Option<(ProfiledTemplate, CostIntervals, usize)> {
    let db = db();
    let oracle = CostOracle::new(db, 1);
    let template = parse_template(SKELETONS[skeleton_idx]).expect("skeleton parses");
    let mut rng = StdRng::seed_from_u64(profile_seed);
    let profiled = profile_template(&oracle, template, CostType::Cardinality, 32, &mut rng);
    let max = profiled.costs.iter().fold(0.0f64, |a, &b| a.max(b));
    let intervals = CostIntervals::new(0.0, (max * 1.05).max(1.0), n_intervals);
    let mut conforming = vec![0usize; n_intervals];
    for eval in &profiled.evaluations {
        if let Some(j) = intervals.interval_of(eval.value) {
            conforming[j] += 1;
        }
    }
    let (interval, &support) =
        conforming.iter().enumerate().max_by_key(|&(_, &n)| n)?;
    if support == 0 {
        return None;
    }
    Some((profiled, intervals, interval))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every binding the fitted generator produces binds the template
    /// completely: `push_row_slice` accepts it (no unbound id, nothing
    /// unknown) and `instantiate` succeeds on the same row.
    #[test]
    fn fitted_generator_bindings_always_validate(
        skeleton_idx in 0usize..SKELETONS.len(),
        profile_seed in 0u64..64,
        draw_seed in 0u64..1024,
        n_intervals in 2usize..8,
    ) {
        let Some((profiled, intervals, interval)) =
            converged_pair(skeleton_idx, profile_seed, n_intervals)
        else {
            return Ok(()); // degenerate profile: nothing to amplify
        };
        let oracle = CostOracle::new(db(), 1);
        let handle = oracle.prepare(&profiled.template).expect("prepares");
        let ctx = PairContext::new(
            &profiled, handle, CostType::Cardinality, intervals, interval,
        )
        .expect("densest interval has conforming probes");

        let mut rng = StdRng::seed_from_u64(draw_seed);
        let mut point = Vec::new();
        let mut row = Vec::new();
        let mut batch = BindingBatch::new(profiled.template.placeholders());
        for _ in 0..64 {
            ctx.generator().draw(&mut rng, &mut point);
            profiled.space.decode_into(&point, &mut row);
            prop_assert!(
                batch.push_row_slice(&row).is_ok(),
                "generator produced an incomplete binding: {:?}",
                row
            );
            let map: HashMap<u32, Value> = row.iter().cloned().collect();
            prop_assert!(
                profiled.template.instantiate(&map).is_ok(),
                "binding does not instantiate: {:?}",
                map
            );
        }
    }

    /// Replaying a lane's RNG stream through the scalar path reproduces
    /// its accepts exactly: same candidates accepted, the same cost bits,
    /// every accepted cost inside the claimed interval, and the rendered
    /// record text equal to `instantiate(..).to_string()`.
    #[test]
    fn lane_accepts_match_scalar_recost_bit_for_bit(
        skeleton_idx in 0usize..SKELETONS.len(),
        profile_seed in 0u64..64,
        batch_seed in 0u64..1024,
        batch_size in 16usize..128,
        n_intervals in 2usize..8,
    ) {
        let db = db();
        let Some((profiled, intervals, interval)) =
            converged_pair(skeleton_idx, profile_seed, n_intervals)
        else {
            return Ok(());
        };
        let oracle = CostOracle::new(db, 1);
        let handle = oracle.prepare(&profiled.template).expect("prepares");
        let ctx = PairContext::new(
            &profiled, handle, CostType::Cardinality, intervals.clone(), interval,
        )
        .expect("densest interval has conforming probes");

        let mut lane = Lane::new();
        lane.run(db, &ctx, batch_seed, batch_size).expect("lane recosts");
        prop_assert_eq!(lane.candidates(), batch_size);

        // Scalar replay of the identical RNG stream.
        let prepared =
            PreparedTemplate::prepare(db, &profiled.template).expect("prepares");
        let mut rng = StdRng::seed_from_u64(batch_seed);
        let mut point = Vec::new();
        let mut row = Vec::new();
        let mut expected: Vec<(f64, String)> = Vec::new();
        for _ in 0..batch_size {
            ctx.generator().draw(&mut rng, &mut point);
            profiled.space.decode_into(&point, &mut row);
            let map: HashMap<u32, Value> = row.iter().cloned().collect();
            let (rows, _cost) = prepared.recost(db, &map).expect("recosts");
            if intervals.interval_of(rows) != Some(interval) {
                continue;
            }
            let sql = profiled.template.instantiate(&map).expect("binds").to_string();
            expected.push((rows, format!("-- cost: {rows:.2}\n{sql};\n")));
        }

        let accepts = lane.accepts().to_vec();
        prop_assert_eq!(accepts.len(), expected.len(), "accept sets diverged");
        let rendered = lane.accepted_chunk(accepts.len());
        let mut start = 0usize;
        for ((end, cost), (scalar_cost, record)) in accepts.iter().zip(&expected) {
            prop_assert_eq!(
                cost.to_bits(),
                scalar_cost.to_bits(),
                "accepted cost diverged from scalar recost"
            );
            prop_assert!(
                intervals.interval_of(*cost) == Some(interval),
                "accepted cost {} outside claimed interval {}",
                cost,
                interval
            );
            let text = std::str::from_utf8(&rendered[start..*end]).expect("utf-8");
            prop_assert_eq!(text, record.as_str(), "rendered record diverged");
            start = *end;
        }
    }
}

/// Acceptance bar at N = 100k: the amplified histogram stays within
/// tolerance of the BO-phase workload's distance to the target, per
/// query. (`AmplifyStats::wasserstein` is measured against the target
/// scaled to N, `final_distance` against the target at its own total, so
/// both are normalized to per-query mass before comparing.)
#[test]
fn amplified_distribution_matches_target_within_tolerance_at_100k() {
    let db = db();
    let n_target = 80u64;
    let target =
        TargetDistribution::uniform(CostIntervals::new(0.0, 5000.0, 5), n_target as usize);
    let specs = redset_template_specs(3);
    let n = 100_000u64;
    let mut config = SqlBarberConfig::fast_test();
    config.amplify = Some(sqlbarber::AmplifyConfig { n, shards: 0, batch: 0, out: None });
    let mut barber = SqlBarber::new(db, config);
    let report = barber
        .generate(&specs[..6], &target, CostType::Cardinality)
        .expect("generation succeeds");
    let amplify = report.amplify.as_ref().expect("amplify stage ran");

    assert_eq!(amplify.requested, n);
    assert_eq!(
        amplify.emitted + amplify.shortfall,
        n,
        "every requested query must be accounted emitted or short"
    );
    assert_eq!(amplify.oracle_misses, 0, "amplification bypasses the oracle");
    assert!(amplify.emitted > 0, "nothing was amplified");

    let amplified_per_query = amplify.wasserstein / n as f64;
    let bo_per_query = report.final_distance / n_target as f64;
    assert!(
        amplified_per_query <= bo_per_query + 0.05,
        "amplified W1/query {amplified_per_query:.4} exceeds BO-phase \
         {bo_per_query:.4} + 0.05 (raw: {} at N={n} vs {} at N={n_target})",
        amplify.wasserstein,
        report.final_distance
    );
}
