//! Property test for the prepared-plan fast path: over randomly varied
//! templates and randomly drawn bindings, `PreparedTemplate::recost`
//! must return exactly — bit for bit — the cardinality and plan cost the
//! from-scratch planner (`Database::explain`) computes for the rendered
//! statement. This is the contract the cost oracle's binding-key memo
//! rests on.

use minidb::{BindingBatch, Database, PreparedTemplate, RecostScratch};
use proptest::prelude::*;
use sqlbarber::oracle::{ColumnarScratch, CostOracle};
use sqlbarber::CostType;
use sqlkit::{parse_template, Value};
use std::collections::HashMap;
use std::sync::OnceLock;

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
    })
}

/// A template skeleton. `{EXTRA}` marks where randomly generated extra
/// conjuncts are spliced in; `kinds` lists the base placeholders as
/// `(id, is_int)`; `extras` is the per-skeleton menu of columns random
/// conjuncts may reference.
struct Skeleton {
    sql: &'static str,
    kinds: &'static [(u32, bool)],
    extras: &'static [(&'static str, bool)],
}

const SKELETONS: &[Skeleton] = &[
    Skeleton {
        sql: "SELECT l.l_orderkey FROM lineitem AS l \
              WHERE l.l_extendedprice > {p_1}{EXTRA}",
        kinds: &[(1, false)],
        extras: &[
            ("l.l_quantity", false),
            ("l.l_discount", false),
            ("l.l_shipdate", true),
            ("l.l_partkey", true),
        ],
    },
    Skeleton {
        sql: "SELECT l.l_orderkey FROM lineitem AS l \
              WHERE l.l_quantity > {p_1} AND l.l_extendedprice < {p_2}{EXTRA}",
        kinds: &[(1, false), (2, false)],
        extras: &[("l.l_discount", false), ("l.l_suppkey", true)],
    },
    // Equality on the primary key: the index-probe decision is
    // binding-dependent and must be re-made per recost.
    Skeleton {
        sql: "SELECT o.o_orderkey FROM orders AS o \
              WHERE o.o_orderkey = {p_1}{EXTRA}",
        kinds: &[(1, true)],
        extras: &[("o.o_totalprice", false), ("o.o_orderdate", true)],
    },
    // Join + aggregation + ORDER BY + LIMIT.
    Skeleton {
        sql: "SELECT o.o_orderkey, SUM(l.l_extendedprice) \
              FROM orders AS o, lineitem AS l \
              WHERE o.o_orderkey = l.l_orderkey \
              AND l.l_extendedprice > {p_1}{EXTRA} \
              GROUP BY o.o_orderkey ORDER BY o.o_orderkey LIMIT 25",
        kinds: &[(1, false)],
        extras: &[("o.o_totalprice", false), ("l.l_quantity", false)],
    },
    // Placeholder both outside and inside an IN-subquery.
    Skeleton {
        sql: "SELECT c.c_custkey FROM customer AS c \
              WHERE c.c_acctbal > {p_1} AND c.c_custkey IN \
              (SELECT o.o_custkey FROM orders AS o WHERE o.o_totalprice > {p_2})\
              {EXTRA}",
        kinds: &[(1, false), (2, false)],
        extras: &[("c.c_nationkey", true)],
    },
];

const OPS: &[&str] = &[">", "<", ">=", "<="];

/// Splice `n_extras` random conjuncts into a skeleton and collect the
/// full `(placeholder id, is_int)` list. Extra placeholders start at 10
/// so they never collide with the base ids.
fn build_template(
    skeleton: &Skeleton,
    picks: &[(usize, usize)],
) -> (String, Vec<(u32, bool)>) {
    let mut kinds: Vec<(u32, bool)> = skeleton.kinds.to_vec();
    let mut extra = String::new();
    for (i, &(column_idx, op_idx)) in picks.iter().enumerate() {
        let (column, is_int) = skeleton.extras[column_idx % skeleton.extras.len()];
        let id = 10 + i as u32;
        extra.push_str(&format!(" AND {column} {} {{p_{id}}}", OPS[op_idx % OPS.len()]));
        kinds.push((id, is_int));
    }
    (skeleton.sql.replace("{EXTRA}", &extra), kinds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn recost_is_bit_identical_to_from_scratch_planning(
        skeleton_idx in 0usize..SKELETONS.len(),
        picks in prop::collection::vec((0usize..8, 0usize..OPS.len()), 0..3),
        raw in prop::collection::vec(-1_000.0f64..50_000.0, 8..9),
    ) {
        let db = db();
        let (sql, kinds) = build_template(&SKELETONS[skeleton_idx], &picks);
        let template = parse_template(&sql).expect("skeleton SQL parses");
        let prepared =
            PreparedTemplate::prepare(db, &template).expect("skeleton plans");

        let bindings: HashMap<u32, Value> = kinds
            .iter()
            .zip(&raw)
            .map(|(&(id, is_int), &x)| {
                (id, if is_int { Value::Int(x as i64) } else { Value::Float(x) })
            })
            .collect();

        let (rows, cost) = prepared.recost(db, &bindings).expect("recost succeeds");
        let query = template.instantiate(&bindings).expect("all ids bound");
        let explain = db.explain(&query).expect("planner handles the statement");

        prop_assert_eq!(
            rows.to_bits(),
            explain.estimated_rows.to_bits(),
            "cardinality diverged: {} vs {} for {}",
            rows, explain.estimated_rows, query
        );
        prop_assert_eq!(
            cost.to_bits(),
            explain.total_cost.to_bits(),
            "plan cost diverged: {} vs {} for {}",
            cost, explain.total_cost, query
        );
    }

    /// The columnar batch path must replay the exact scalar arithmetic:
    /// for arbitrary templates and binding batches — including duplicate
    /// rows within one batch — `recost_batch` returns bit-for-bit the
    /// `(rows, cost)` pairs that per-row `recost` produces.
    #[test]
    fn recost_batch_is_bit_identical_to_per_row_recost(
        skeleton_idx in 0usize..SKELETONS.len(),
        picks in prop::collection::vec((0usize..8, 0usize..OPS.len()), 0..3),
        rows_raw in prop::collection::vec(
            prop::collection::vec(-1_000.0f64..50_000.0, 8..9),
            1..7,
        ),
        duplicate_first in any::<bool>(),
    ) {
        let db = db();
        let (sql, kinds) = build_template(&SKELETONS[skeleton_idx], &picks);
        let template = parse_template(&sql).expect("skeleton SQL parses");
        let prepared =
            PreparedTemplate::prepare(db, &template).expect("skeleton plans");

        let mut rows: Vec<HashMap<u32, Value>> = rows_raw
            .iter()
            .map(|raw| {
                kinds
                    .iter()
                    .zip(raw)
                    .map(|(&(id, is_int), &x)| {
                        (id, if is_int { Value::Int(x as i64) } else { Value::Float(x) })
                    })
                    .collect()
            })
            .collect();
        if duplicate_first {
            // In-batch duplicates must produce identical (deduplicable)
            // outputs, not merely close ones.
            rows.push(rows[0].clone());
        }

        let ids: Vec<u32> = kinds.iter().map(|&(id, _)| id).collect();
        let batch = BindingBatch::from_rows(&ids, &rows).expect("all ids bound");
        let mut scratch = RecostScratch::new();
        let batched = prepared
            .recost_batch(db, &batch, &mut scratch)
            .expect("batch recost succeeds")
            .to_vec();

        prop_assert_eq!(batched.len(), rows.len());
        for (row, &(batch_rows, batch_cost)) in rows.iter().zip(batched.iter()) {
            let (scalar_rows, scalar_cost) =
                prepared.recost(db, row).expect("scalar recost succeeds");
            prop_assert_eq!(batch_rows.to_bits(), scalar_rows.to_bits());
            prop_assert_eq!(batch_cost.to_bits(), scalar_cost.to_bits());
        }
        if duplicate_first {
            let first = batched[0];
            let last = batched[batched.len() - 1];
            prop_assert_eq!(first.0.to_bits(), last.0.to_bits());
            prop_assert_eq!(first.1.to_bits(), last.1.to_bits());
        }
    }

    /// Oracle-level contract: `cost_prepared_batch_columnar` (shard-bulk
    /// locking + columnar recost) returns the same bits and the same
    /// hit/eval/eviction accounting as the per-probe batch path, for
    /// batches whose binding keys span multiple memo shards.
    #[test]
    fn oracle_columnar_batch_matches_per_probe_batch(
        skeleton_idx in 0usize..SKELETONS.len(),
        rows_raw in prop::collection::vec(
            prop::collection::vec(-1_000.0f64..50_000.0, 8..9),
            1..9,
        ),
        threads in prop::sample::select(vec![1usize, 2, 8]),
    ) {
        let db = db();
        let (sql, kinds) = build_template(&SKELETONS[skeleton_idx], &[]);
        let template = parse_template(&sql).expect("skeleton SQL parses");

        let mut batch: Vec<HashMap<u32, Value>> = rows_raw
            .iter()
            .map(|raw| {
                kinds
                    .iter()
                    .zip(raw)
                    .map(|(&(id, is_int), &x)| {
                        (id, if is_int { Value::Int(x as i64) } else { Value::Float(x) })
                    })
                    .collect()
            })
            .collect();
        batch.push(batch[0].clone()); // force an in-batch memo-hit dedup

        let per_probe = {
            let oracle = CostOracle::new(db, threads);
            let handle = oracle.prepare(&template).expect("prepare");
            let results = oracle.cost_prepared_batch(&handle, &batch, CostType::PlanCost);
            (results, oracle.stats())
        };
        let columnar = {
            let oracle = CostOracle::new(db, threads);
            let handle = oracle.prepare(&template).expect("prepare");
            let mut scratch = ColumnarScratch::new();
            let results = oracle
                .cost_prepared_batch_columnar(&handle, &batch, CostType::PlanCost, &mut scratch)
                .to_vec();
            (results, oracle.stats())
        };

        prop_assert_eq!(per_probe.0.len(), columnar.0.len());
        for (a, b) in per_probe.0.iter().zip(columnar.0.iter()) {
            match (a, b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x.to_bits(), y.to_bits()),
                (Err(x), Err(y)) => prop_assert_eq!(format!("{x:?}"), format!("{y:?}")),
                _ => prop_assert!(false, "ok/err mismatch: {:?} vs {:?}", a, b),
            }
        }
        prop_assert_eq!(per_probe.1, columnar.1, "oracle accounting diverged");
    }
}
