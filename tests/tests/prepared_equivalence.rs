//! Property test for the prepared-plan fast path: over randomly varied
//! templates and randomly drawn bindings, `PreparedTemplate::recost`
//! must return exactly — bit for bit — the cardinality and plan cost the
//! from-scratch planner (`Database::explain`) computes for the rendered
//! statement. This is the contract the cost oracle's binding-key memo
//! rests on.

use minidb::{Database, PreparedTemplate};
use proptest::prelude::*;
use sqlkit::{parse_template, Value};
use std::collections::HashMap;
use std::sync::OnceLock;

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
    })
}

/// A template skeleton. `{EXTRA}` marks where randomly generated extra
/// conjuncts are spliced in; `kinds` lists the base placeholders as
/// `(id, is_int)`; `extras` is the per-skeleton menu of columns random
/// conjuncts may reference.
struct Skeleton {
    sql: &'static str,
    kinds: &'static [(u32, bool)],
    extras: &'static [(&'static str, bool)],
}

const SKELETONS: &[Skeleton] = &[
    Skeleton {
        sql: "SELECT l.l_orderkey FROM lineitem AS l \
              WHERE l.l_extendedprice > {p_1}{EXTRA}",
        kinds: &[(1, false)],
        extras: &[
            ("l.l_quantity", false),
            ("l.l_discount", false),
            ("l.l_shipdate", true),
            ("l.l_partkey", true),
        ],
    },
    Skeleton {
        sql: "SELECT l.l_orderkey FROM lineitem AS l \
              WHERE l.l_quantity > {p_1} AND l.l_extendedprice < {p_2}{EXTRA}",
        kinds: &[(1, false), (2, false)],
        extras: &[("l.l_discount", false), ("l.l_suppkey", true)],
    },
    // Equality on the primary key: the index-probe decision is
    // binding-dependent and must be re-made per recost.
    Skeleton {
        sql: "SELECT o.o_orderkey FROM orders AS o \
              WHERE o.o_orderkey = {p_1}{EXTRA}",
        kinds: &[(1, true)],
        extras: &[("o.o_totalprice", false), ("o.o_orderdate", true)],
    },
    // Join + aggregation + ORDER BY + LIMIT.
    Skeleton {
        sql: "SELECT o.o_orderkey, SUM(l.l_extendedprice) \
              FROM orders AS o, lineitem AS l \
              WHERE o.o_orderkey = l.l_orderkey \
              AND l.l_extendedprice > {p_1}{EXTRA} \
              GROUP BY o.o_orderkey ORDER BY o.o_orderkey LIMIT 25",
        kinds: &[(1, false)],
        extras: &[("o.o_totalprice", false), ("l.l_quantity", false)],
    },
    // Placeholder both outside and inside an IN-subquery.
    Skeleton {
        sql: "SELECT c.c_custkey FROM customer AS c \
              WHERE c.c_acctbal > {p_1} AND c.c_custkey IN \
              (SELECT o.o_custkey FROM orders AS o WHERE o.o_totalprice > {p_2})\
              {EXTRA}",
        kinds: &[(1, false), (2, false)],
        extras: &[("c.c_nationkey", true)],
    },
];

const OPS: &[&str] = &[">", "<", ">=", "<="];

/// Splice `n_extras` random conjuncts into a skeleton and collect the
/// full `(placeholder id, is_int)` list. Extra placeholders start at 10
/// so they never collide with the base ids.
fn build_template(
    skeleton: &Skeleton,
    picks: &[(usize, usize)],
) -> (String, Vec<(u32, bool)>) {
    let mut kinds: Vec<(u32, bool)> = skeleton.kinds.to_vec();
    let mut extra = String::new();
    for (i, &(column_idx, op_idx)) in picks.iter().enumerate() {
        let (column, is_int) = skeleton.extras[column_idx % skeleton.extras.len()];
        let id = 10 + i as u32;
        extra.push_str(&format!(" AND {column} {} {{p_{id}}}", OPS[op_idx % OPS.len()]));
        kinds.push((id, is_int));
    }
    (skeleton.sql.replace("{EXTRA}", &extra), kinds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn recost_is_bit_identical_to_from_scratch_planning(
        skeleton_idx in 0usize..SKELETONS.len(),
        picks in prop::collection::vec((0usize..8, 0usize..OPS.len()), 0..3),
        raw in prop::collection::vec(-1_000.0f64..50_000.0, 8..9),
    ) {
        let db = db();
        let (sql, kinds) = build_template(&SKELETONS[skeleton_idx], &picks);
        let template = parse_template(&sql).expect("skeleton SQL parses");
        let prepared =
            PreparedTemplate::prepare(db, &template).expect("skeleton plans");

        let bindings: HashMap<u32, Value> = kinds
            .iter()
            .zip(&raw)
            .map(|(&(id, is_int), &x)| {
                (id, if is_int { Value::Int(x as i64) } else { Value::Float(x) })
            })
            .collect();

        let (rows, cost) = prepared.recost(db, &bindings).expect("recost succeeds");
        let query = template.instantiate(&bindings).expect("all ids bound");
        let explain = db.explain(&query).expect("planner handles the statement");

        prop_assert_eq!(
            rows.to_bits(),
            explain.estimated_rows.to_bits(),
            "cardinality diverged: {} vs {} for {}",
            rows, explain.estimated_rows, query
        );
        prop_assert_eq!(
            cost.to_bits(),
            explain.total_cost.to_bits(),
            "plan cost diverged: {} vs {} for {}",
            cost, explain.total_cost, query
        );
    }
}
