//! Crash-safety suite: a run killed at any checkpoint boundary and
//! resumed from disk must reproduce the uninterrupted run bit for bit —
//! same workload, same counters, same manifest (minus wall-clock) — at
//! any thread count. Corrupted snapshots (bit flips, truncation) must be
//! detected by the CRC-guarded codec and skipped in favour of the
//! previous good generation, silently changing nothing about the output.
//!
//! The CI crash-resume job runs these by name (`kill_point_matrix_*`).

use sqlbarber::cost::CostType;
use sqlbarber::{
    CheckpointConfig, GenerateError, GenerationReport, KillSwitch, SqlBarber,
    SqlBarberConfig,
};
use std::path::{Path, PathBuf};
use workload::redset::redset_template_specs;
use workload::{CostIntervals, TargetDistribution};

const KILL_POINTS: [&str; 5] = [
    "after-templates",
    "after-profiling",
    "after-refine",
    "mid-search",
    "after-search",
];

fn tpch() -> minidb::Database {
    minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
}

fn target() -> TargetDistribution {
    TargetDistribution::uniform(CostIntervals::new(0.0, 5000.0, 5), 60)
}

fn config(threads: usize, checkpoint: Option<CheckpointConfig>) -> SqlBarberConfig {
    let mut config = SqlBarberConfig { threads, ..SqlBarberConfig::fast_test() };
    config.checkpoint = checkpoint;
    config
}

fn generate(db: &minidb::Database, config: SqlBarberConfig) -> GenerationReport {
    let specs = redset_template_specs(3);
    SqlBarber::new(db, config)
        .generate(&specs[..4], &target(), CostType::Cardinality)
        .expect("uninterrupted generation succeeds")
}

/// Run with the kill switch armed; the chaos switch must actually fire.
fn generate_killed(
    db: &minidb::Database,
    config: SqlBarberConfig,
    point: &str,
) -> GenerateError {
    let specs = redset_template_specs(3);
    let err = SqlBarber::new(db, config)
        .with_kill_switch(KillSwitch::parse(point).unwrap())
        .generate(&specs[..4], &target(), CostType::Cardinality)
        .expect_err("armed kill switch must abort the run");
    assert!(matches!(err, GenerateError::Killed(_)), "{point}: {err}");
    err
}

fn resume(db: &minidb::Database, config: SqlBarberConfig, dir: &Path) -> GenerationReport {
    SqlBarber::new(db, config)
        .resume(dir, &target(), CostType::Cardinality)
        .expect("resume succeeds")
}

/// Exact (SQL, cost-bits) fingerprint of the generated workload.
fn flatten(r: &GenerationReport) -> Vec<(String, u64)> {
    r.queries.iter().map(|q| (q.sql.clone(), q.cost.to_bits())).collect()
}

/// The manifest JSON with its one wall-clock field removed.
fn manifest_without_wallclock(r: &GenerationReport) -> serde_json::Value {
    let path = std::env::temp_dir().join(format!(
        "sqlbarber-crash-resume-{}-{}.json",
        std::process::id(),
        r.queries.len()
    ));
    r.write_manifest(&path).expect("manifest written");
    let text = std::fs::read_to_string(&path).expect("manifest readable");
    let _ = std::fs::remove_file(&path);
    let mut value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let serde_json::Value::Object(pairs) = &mut value else {
        panic!("manifest is not a JSON object");
    };
    pairs.retain(|(key, _)| key != "elapsed_seconds");
    value
}

fn assert_identical(baseline: &GenerationReport, resumed: &GenerationReport, tag: &str) {
    assert_eq!(flatten(baseline), flatten(resumed), "{tag}: workload diverged");
    assert_eq!(
        baseline.final_distance.to_bits(),
        resumed.final_distance.to_bits(),
        "{tag}: final distance diverged"
    );
    assert_eq!(baseline.distribution, resumed.distribution, "{tag}: histogram");
    assert_eq!(baseline.evaluations, resumed.evaluations, "{tag}: budget");
    assert_eq!(baseline.oracle_probes, resumed.oracle_probes, "{tag}: probes");
    assert_eq!(
        baseline.oracle_cache_hits, resumed.oracle_cache_hits,
        "{tag}: cache hits"
    );
    assert_eq!(
        baseline.scheduler_rounds, resumed.scheduler_rounds,
        "{tag}: scheduler rounds"
    );
    assert_eq!(
        baseline.n_refined_templates, resumed.n_refined_templates,
        "{tag}: refined templates"
    );
    assert_eq!(
        baseline.skipped_intervals, resumed.skipped_intervals,
        "{tag}: skipped intervals"
    );
    assert_eq!(baseline.resilience, resumed.resilience, "{tag}: resilience stats");
    assert_eq!(baseline.degradation, resumed.degradation, "{tag}: degradation stats");
    assert_eq!(
        manifest_without_wallclock(baseline),
        manifest_without_wallclock(resumed),
        "{tag}: manifests diverged"
    );
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("sqlbarber-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn kill_matrix_at(threads: usize) {
    let db = tpch();
    // Checkpointing is pure observation: the baseline is uncheckpointed.
    let baseline = generate(&db, config(threads, None));

    for point in KILL_POINTS {
        let tag = format!("threads={threads} kill={point}");
        let dir = fresh_dir(&format!("{threads}-{point}"));
        // `every: 1` checkpoints at each scheduler round so the
        // mid-search point always comes due, whatever the round count.
        let checkpoint = Some(CheckpointConfig { dir: dir.clone(), every: 1 });
        generate_killed(&db, config(threads, checkpoint.clone()), point);
        let resumed = resume(&db, config(threads, checkpoint), &dir);
        assert_identical(&baseline, &resumed, &tag);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn kill_point_matrix_single_thread() {
    kill_matrix_at(1);
}

#[test]
fn kill_point_matrix_four_threads() {
    kill_matrix_at(4);
}

/// The newest snapshot generation — chronologically last by file name.
fn newest_generation(dir: &Path) -> PathBuf {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("checkpoint dir listable")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("snapshot-") && n.ends_with(".bin"))
        })
        .collect();
    files.sort();
    files.pop().expect("at least one snapshot generation")
}

#[test]
fn corrupt_latest_generation_falls_back_and_stays_identical() {
    let db = tpch();
    let baseline = generate(&db, config(1, None));

    // Bit-flip in the payload: the CRC rejects the newest generation and
    // the resume replays more of the pipeline from the previous one —
    // with identical results, because the pipeline is deterministic.
    let dir = fresh_dir("bitflip");
    let checkpoint = Some(CheckpointConfig { dir: dir.clone(), every: 1 });
    generate_killed(&db, config(1, checkpoint.clone()), "after-search");
    let victim = newest_generation(&dir);
    let mut bytes = std::fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();
    let resumed = resume(&db, config(1, checkpoint), &dir);
    assert_identical(&baseline, &resumed, "bit-flipped latest generation");
    let _ = std::fs::remove_dir_all(&dir);

    // Truncation: same fallback, same bits.
    let dir = fresh_dir("truncate");
    let checkpoint = Some(CheckpointConfig { dir: dir.clone(), every: 1 });
    generate_killed(&db, config(1, checkpoint.clone()), "after-search");
    let victim = newest_generation(&dir);
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
    let resumed = resume(&db, config(1, checkpoint), &dir);
    assert_identical(&baseline, &resumed, "truncated latest generation");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_refuses_a_mismatched_configuration() {
    let db = tpch();
    let dir = fresh_dir("fingerprint");
    let checkpoint = Some(CheckpointConfig { dir: dir.clone(), every: 1 });
    generate_killed(&db, config(1, checkpoint.clone()), "after-profiling");

    // Different seed → different fingerprint → typed refusal.
    let mut other = config(1, checkpoint);
    other.seed ^= 1;
    let err = SqlBarber::new(&db, other)
        .resume(&dir, &target(), CostType::Cardinality)
        .expect_err("mismatched config must be refused");
    assert!(matches!(err, GenerateError::Checkpoint(_)), "{err}");
    assert!(err.to_string().contains("fingerprint"), "unhelpful: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resumed_run_keeps_checkpointing() {
    // A resumed run continues the generation sequence in the same
    // directory, so a second crash still has fresh snapshots to land on.
    let db = tpch();
    let dir = fresh_dir("continues");
    let checkpoint = Some(CheckpointConfig { dir: dir.clone(), every: 1 });
    generate_killed(&db, config(1, checkpoint.clone()), "after-profiling");
    let before = newest_generation(&dir);
    let _ = resume(&db, config(1, checkpoint), &dir);
    let after = newest_generation(&dir);
    assert!(after > before, "resume wrote no new generations: {after:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
