//! Property tests for the vectorized execution path: over randomly
//! varied templates and randomly drawn bindings — NULL-heavy rows,
//! empty/inverted BETWEEN intervals, duplicate rows — the batch executor
//! [`PreparedExec::execute_batch`] must return exactly, bit for bit, the
//! `(cardinality, work_micros)` pairs that per-row instantiate-and-
//! `Database::execute` produces, and the oracle's columnar dispatch for
//! execution-based cost types must match the per-probe path in results
//! *and* in memo accounting, even under capacity-2 eviction pressure.

use minidb::{BindingBatch, Database, DbError, ExecScratch, PreparedExec};
use proptest::prelude::*;
use sqlbarber::oracle::{ColumnarScratch, CostOracle};
use sqlbarber::CostType;
use sqlkit::{parse_template, Value};
use std::collections::HashMap;
use std::sync::OnceLock;

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
    })
}

/// A template skeleton with its placeholders as `(id, is_int)` and the
/// execution tier `PreparedExec::prepare` must classify it into.
struct Skeleton {
    sql: &'static str,
    kinds: &'static [(u32, bool)],
    tier: &'static str,
}

const SKELETONS: &[Skeleton] = &[
    // Single numeric comparison: columnar selection-vector kernels,
    // seq-vs-index decided per row.
    Skeleton {
        sql: "SELECT l.l_orderkey FROM lineitem AS l \
              WHERE l.l_extendedprice > {p_1}",
        kinds: &[(1, false)],
        tier: "columnar",
    },
    // BETWEEN (empty when p_1 > p_2) + extra conjunct + ORDER BY/LIMIT.
    Skeleton {
        sql: "SELECT l.l_orderkey, l.l_quantity FROM lineitem AS l \
              WHERE l.l_quantity BETWEEN {p_1} AND {p_2} \
              AND l.l_discount < {p_3} \
              ORDER BY l.l_orderkey LIMIT 40",
        kinds: &[(1, false), (2, false), (3, false)],
        tier: "columnar",
    },
    // Equality on an indexed integer key: point-lookup probes.
    Skeleton {
        sql: "SELECT o.o_orderkey FROM orders AS o \
              WHERE o.o_orderkey = {p_1}",
        kinds: &[(1, true)],
        tier: "columnar",
    },
    // Join + aggregation: per-row scalar execution with the join
    // pipeline planned once (hoisted tier).
    Skeleton {
        sql: "SELECT o.o_orderkey, SUM(l.l_extendedprice) \
              FROM orders AS o, lineitem AS l \
              WHERE o.o_orderkey = l.l_orderkey AND l.l_extendedprice > {p_1} \
              GROUP BY o.o_orderkey ORDER BY o.o_orderkey LIMIT 25",
        kinds: &[(1, false)],
        tier: "hoisted",
    },
    // Placeholder inside the IN-subquery: dynamic per-row subquery,
    // scalar tier.
    Skeleton {
        sql: "SELECT c.c_custkey FROM customer AS c \
              WHERE c.c_acctbal > {p_1} AND c.c_custkey IN \
              (SELECT o.o_custkey FROM orders AS o WHERE o.o_totalprice > {p_2})",
        kinds: &[(1, false), (2, false)],
        tier: "scalar",
    },
];

/// Build one binding row from raw draws. `null_mask` bit `i` nulls the
/// `i`-th placeholder — NULL-heavy rows are a first-class input, not an
/// afterthought: a NULL operand fails every predicate in the executor
/// and must round-trip through the batch kernels identically.
fn binding_row(
    kinds: &[(u32, bool)],
    raw: &[f64],
    null_mask: u32,
) -> HashMap<u32, Value> {
    kinds
        .iter()
        .zip(raw)
        .enumerate()
        .map(|(i, (&(id, is_int), &x))| {
            let value = if null_mask >> i & 1 == 1 {
                Value::Null
            } else if is_int {
                Value::Int(x as i64)
            } else {
                Value::Float(x)
            };
            (id, value)
        })
        .collect()
}

fn rows_strategy(
    max_rows: usize,
) -> impl Strategy<Value = Vec<(Vec<f64>, u32)>> {
    prop::collection::vec(
        (prop::collection::vec(-1_000.0f64..60_000.0, 3..4), 0u32..8),
        1..max_rows,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `execute_batch` == per-row `Database::execute`, bit for bit, for
    /// every tier — cardinality and the deterministic work proxy alike.
    #[test]
    fn execute_batch_matches_scalar_execute(
        skeleton_idx in 0usize..SKELETONS.len(),
        rows_raw in rows_strategy(7),
        duplicate_first in any::<bool>(),
    ) {
        let db = db();
        let skeleton = &SKELETONS[skeleton_idx];
        let template = parse_template(skeleton.sql).expect("skeleton SQL parses");
        let exec = PreparedExec::prepare(db, &template);
        prop_assert_eq!(exec.tier(), skeleton.tier, "tier for {}", skeleton.sql);

        let mut rows: Vec<HashMap<u32, Value>> = rows_raw
            .iter()
            .map(|(raw, null_mask)| binding_row(skeleton.kinds, raw, *null_mask))
            .collect();
        if duplicate_first {
            rows.push(rows[0].clone());
        }

        let ids: Vec<u32> = skeleton.kinds.iter().map(|&(id, _)| id).collect();
        let batch = BindingBatch::from_rows(&ids, &rows).expect("all ids bound");
        let mut scratch = ExecScratch::new();
        let batched = exec
            .execute_batch(db, &batch, &mut scratch)
            .expect("batch executes")
            .to_vec();

        prop_assert_eq!(batched.len(), rows.len());
        for (row, batch_result) in rows.iter().zip(batched.iter()) {
            let expected = match template.instantiate(row) {
                Ok(select) => db
                    .execute(&select)
                    .map(|r| (r.cardinality() as f64, r.work_micros())),
                Err(e) => Err(DbError::Unsupported(e.to_string())),
            };
            match (&expected, batch_result) {
                (Ok((card_s, work_s)), Ok((card_b, work_b))) => {
                    prop_assert_eq!(
                        card_b.to_bits(),
                        card_s.to_bits(),
                        "cardinality diverged: {} vs {}", card_b, card_s
                    );
                    prop_assert_eq!(
                        work_b.to_bits(),
                        work_s.to_bits(),
                        "work proxy diverged: {} vs {}", work_b, work_s
                    );
                }
                (Err(e_s), Err(e_b)) => {
                    prop_assert_eq!(format!("{e_b:?}"), format!("{e_s:?}"));
                }
                (expected, got) => prop_assert!(
                    false,
                    "ok/err mismatch: scalar {:?} vs batch {:?}", expected, got
                ),
            }
        }
        if duplicate_first {
            // Duplicate rows must yield byte-identical outputs.
            prop_assert_eq!(
                format!("{:?}", batched[0]),
                format!("{:?}", batched[batched.len() - 1])
            );
        }
    }

    /// Oracle-level contract for execution-based cost types: the
    /// columnar dispatch (`cost_prepared_batch_columnar` →
    /// `execute_batch`) returns the same bits and the same
    /// hit/eval/eviction accounting as the per-probe path, across
    /// thread counts and under capacity-2 memo eviction pressure.
    #[test]
    fn oracle_columnar_execution_matches_per_probe(
        skeleton_idx in 0usize..SKELETONS.len(),
        rows_raw in rows_strategy(9),
        cost_type in prop::sample::select(vec![
            CostType::ActualCardinality,
            CostType::ExecutionTimeMicros,
        ]),
        threads in prop::sample::select(vec![1usize, 2, 8]),
        squeeze_cache in any::<bool>(),
    ) {
        let db = db();
        let skeleton = &SKELETONS[skeleton_idx];
        let template = parse_template(skeleton.sql).expect("skeleton SQL parses");

        let mut batch: Vec<HashMap<u32, Value>> = rows_raw
            .iter()
            .map(|(raw, null_mask)| binding_row(skeleton.kinds, raw, *null_mask))
            .collect();
        batch.push(batch[0].clone()); // in-batch duplicate: memo-hit dedup

        let capacity = if squeeze_cache { 2 } else { 1024 };
        let per_probe = {
            let oracle = CostOracle::new(db, threads).with_cache_capacity(capacity);
            let handle = oracle.prepare(&template).expect("prepare");
            let results = oracle.cost_prepared_batch(&handle, &batch, cost_type);
            (results, oracle.stats())
        };
        let columnar = {
            let oracle = CostOracle::new(db, threads).with_cache_capacity(capacity);
            let handle = oracle.prepare(&template).expect("prepare");
            let mut scratch = ColumnarScratch::new();
            let results = oracle
                .cost_prepared_batch_columnar(&handle, &batch, cost_type, &mut scratch)
                .to_vec();
            (results, oracle.stats())
        };

        prop_assert_eq!(per_probe.0.len(), columnar.0.len());
        for (a, b) in per_probe.0.iter().zip(columnar.0.iter()) {
            match (a, b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(
                    x.to_bits(), y.to_bits(), "{} vs {}", x, y
                ),
                (Err(x), Err(y)) => {
                    prop_assert_eq!(format!("{x:?}"), format!("{y:?}"))
                }
                _ => prop_assert!(false, "ok/err mismatch: {:?} vs {:?}", a, b),
            }
        }
        prop_assert_eq!(per_probe.1, columnar.1, "oracle accounting diverged");
    }

    /// Thread-count invariance: the columnar execution dispatch returns
    /// identical bits and identical stats at 1, 2, and 8 threads.
    #[test]
    fn oracle_columnar_execution_is_thread_invariant(
        skeleton_idx in 0usize..SKELETONS.len(),
        rows_raw in rows_strategy(9),
        cost_type in prop::sample::select(vec![
            CostType::ActualCardinality,
            CostType::ExecutionTimeMicros,
        ]),
    ) {
        let db = db();
        let skeleton = &SKELETONS[skeleton_idx];
        let template = parse_template(skeleton.sql).expect("skeleton SQL parses");
        let batch: Vec<HashMap<u32, Value>> = rows_raw
            .iter()
            .map(|(raw, null_mask)| binding_row(skeleton.kinds, raw, *null_mask))
            .collect();

        let runs: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                let oracle = CostOracle::new(db, threads).with_cache_capacity(2);
                let handle = oracle.prepare(&template).expect("prepare");
                let mut scratch = ColumnarScratch::new();
                let results = oracle
                    .cost_prepared_batch_columnar(
                        &handle, &batch, cost_type, &mut scratch,
                    )
                    .to_vec();
                (results, oracle.stats())
            })
            .collect();

        for run in &runs[1..] {
            prop_assert_eq!(run.0.len(), runs[0].0.len());
            for (a, b) in runs[0].0.iter().zip(run.0.iter()) {
                prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
            }
            prop_assert_eq!(&run.1, &runs[0].1, "stats diverged across threads");
        }
    }
}
