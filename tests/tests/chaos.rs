//! Chaos suite: the full pipeline under LLM transport-fault storms.
//!
//! Three fault rates (0%, 15%, 50%) plus a correlated burst-outage
//! scenario. At every rate the pipeline must terminate, never panic,
//! produce a valid [`GenerationReport`], and stay bit-identical for a
//! fixed seed at 1 and 4 oracle threads — LLM traffic is strictly
//! sequential, so worker threads can never observe (or perturb) the
//! transport's fault draws or the retry layer's jitter.
//!
//! The CI chaos job runs these by name (`storm_rate_*`) at each rate.

use llm::{RetryPolicy, TransportFaultConfig};
use sqlbarber::cost::CostType;
use sqlbarber::{GenerationReport, SqlBarber, SqlBarberConfig};
use workload::redset::redset_template_specs;
use workload::{CostIntervals, TargetDistribution};

fn tpch() -> minidb::Database {
    minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
}

fn run_with(
    db: &minidb::Database,
    transport: TransportFaultConfig,
    retry: RetryPolicy,
    threads: usize,
) -> GenerationReport {
    let target = TargetDistribution::uniform(CostIntervals::new(0.0, 5000.0, 5), 80);
    let specs = redset_template_specs(3);
    let config = SqlBarberConfig {
        threads,
        transport,
        retry,
        ..SqlBarberConfig::fast_test()
    };
    let mut barber = SqlBarber::new(db, config);
    barber
        .generate(&specs[..6], &target, CostType::Cardinality)
        .expect("pipeline must degrade gracefully, not abort")
}

fn run_at_rate(db: &minidb::Database, rate: f64, threads: usize) -> GenerationReport {
    run_with(db, TransportFaultConfig::uniform(rate), RetryPolicy::default(), threads)
}

/// Exact (SQL, cost-bits) fingerprint of the generated workload.
fn flatten(r: &GenerationReport) -> Vec<(String, u64)> {
    r.queries.iter().map(|q| (q.sql.clone(), q.cost.to_bits())).collect()
}

fn assert_report_valid(report: &GenerationReport) {
    assert!(!report.queries.is_empty(), "no queries generated");
    assert!(report.final_distance.is_finite());
    assert!(report.n_seed_templates > 0);
    assert!(report.llm_usage.requests > 0);
    for query in &report.queries {
        assert!(query.cost.is_finite(), "non-finite cost in {}", query.sql);
    }
    // The manifest must serialize whatever the storm left behind.
    let dir = std::env::temp_dir().join(format!(
        "sqlbarber-chaos-{}-{}",
        std::process::id(),
        report.queries.len()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("manifest.json");
    report.write_manifest(&path).expect("manifest writes cleanly");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"resilience\""));
    assert!(text.contains("\"degradation\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn storm_rate_00_is_invisible() {
    let db = tpch();
    // A zero-rate injector and an explicitly disabled one must be
    // byte-for-byte identical: the wrapper draws from its own RNG, never
    // the model's.
    let zero = run_at_rate(&db, 0.0, 1);
    let none =
        run_with(&db, TransportFaultConfig::none(), RetryPolicy::default(), 1);
    assert_eq!(flatten(&zero), flatten(&none), "rate-0 faults changed the workload");
    assert_eq!(zero.final_distance.to_bits(), none.final_distance.to_bits());
    assert!(zero.resilience.is_quiet(), "resilience fired on a healthy transport");
    assert!(zero.degradation.is_quiet(), "degradation counted on a healthy transport");
    assert_eq!(zero.resilience.calls, zero.resilience.attempts);
    assert_report_valid(&zero);
}

#[test]
fn storm_rate_15_recovers_via_retries() {
    let db = tpch();
    let report = run_at_rate(&db, 0.15, 1);
    assert_report_valid(&report);
    assert!(report.resilience.failures > 0, "15% storm injected nothing");
    assert!(report.resilience.retries > 0, "no retries at 15% faults");
    assert!(
        report.resilience.recoveries > 0,
        "retries never recovered a call: {:?}",
        report.resilience
    );
    assert!(report.resilience.attempts > report.resilience.calls);
}

#[test]
fn storm_rate_50_degrades_gracefully() {
    let db = tpch();
    let report = run_at_rate(&db, 0.5, 1);
    assert_report_valid(&report);
    assert!(report.resilience.failures > 0);
    assert!(report.resilience.retries > 0);
    // At 50% per-attempt loss some calls exhaust their attempts: the
    // pipeline absorbs those as degradation instead of aborting.
    assert!(
        report.resilience.giveups > 0,
        "expected surfaced failures at 50%: {:?}",
        report.resilience
    );
    assert!(
        !report.degradation.is_quiet(),
        "giveups must surface as degradation: {:?}",
        report.degradation
    );
    assert_eq!(
        report.degradation.llm_failures, report.resilience.giveups,
        "every surfaced failure must be accounted exactly once"
    );
}

#[test]
fn storms_are_bit_identical_across_thread_counts() {
    let db = tpch();
    for rate in [0.15, 0.5] {
        let serial = run_at_rate(&db, rate, 1);
        let parallel = run_at_rate(&db, rate, 4);
        assert_eq!(
            flatten(&serial),
            flatten(&parallel),
            "rate {rate}: workloads diverged across thread counts"
        );
        assert_eq!(
            serial.final_distance.to_bits(),
            parallel.final_distance.to_bits(),
            "rate {rate}: distance diverged"
        );
        assert_eq!(
            serial.resilience, parallel.resilience,
            "rate {rate}: resilience counters diverged — LLM traffic leaked into \
             the parallel section"
        );
        assert_eq!(serial.degradation, parallel.degradation, "rate {rate}");
        assert_eq!(serial.skipped_intervals, parallel.skipped_intervals);
    }
}

#[test]
fn burst_outages_trip_the_breaker_and_the_run_survives() {
    let db = tpch();
    // Burst-heavy weather: few independent faults, frequent long
    // correlated outages — the scenario the circuit breaker exists for.
    let transport = TransportFaultConfig {
        p_timeout: 0.02,
        p_rate_limit: 0.02,
        p_truncate: 0.0,
        p_server_error: 0.02,
        p_burst_start: 0.08,
        burst_len: (6, 12),
        retry_after_ms: (100, 400),
    };
    // A short cooldown keeps the virtual-clock run brisk while still
    // exercising open → half-open → closed transitions.
    let retry = RetryPolicy {
        breaker_threshold: 4,
        breaker_cooldown_ms: 500,
        ..RetryPolicy::default()
    };
    let report = run_with(&db, transport, retry, 1);
    assert_report_valid(&report);
    assert!(
        report.resilience.breaker_trips > 0,
        "bursts never tripped the breaker: {:?}",
        report.resilience
    );
    assert!(
        report.resilience.breaker_probes > 0,
        "breaker never recovered via a half-open probe: {:?}",
        report.resilience
    );

    // Same weather with the breaker disabled: still terminates, still
    // valid, rides the bursts out with retries alone.
    let no_breaker = RetryPolicy {
        breaker_enabled: false,
        ..RetryPolicy::default()
    };
    let report = run_with(&db, transport, no_breaker, 1);
    assert_report_valid(&report);
    assert_eq!(report.resilience.breaker_trips, 0);
    assert_eq!(report.resilience.circuit_rejections, 0);
}

#[test]
fn storm_survives_a_mid_run_kill_and_resume() {
    // Crash-safety under weather: kill the pipeline mid-search during a
    // 15% transport-fault storm, resume from the on-disk snapshot, and
    // demand the exact uninterrupted outcome — including the resilience
    // and degradation ledgers, which only match if the checkpoint
    // captured the full LLM stack state (fault RNG positions, breaker,
    // virtual clock, injected-fault counters) bit for bit.
    let db = tpch();
    let baseline = run_at_rate(&db, 0.15, 1);

    let dir = std::env::temp_dir()
        .join(format!("sqlbarber-chaos-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let target = TargetDistribution::uniform(CostIntervals::new(0.0, 5000.0, 5), 80);
    let specs = redset_template_specs(3);
    let mut config = SqlBarberConfig {
        threads: 1,
        transport: TransportFaultConfig::uniform(0.15),
        ..SqlBarberConfig::fast_test()
    };
    config.checkpoint =
        Some(sqlbarber::CheckpointConfig { dir: dir.clone(), every: 1 });
    let err = SqlBarber::new(&db, config.clone())
        .with_kill_switch(sqlbarber::KillSwitch::parse("mid-search").unwrap())
        .generate(&specs[..6], &target, CostType::Cardinality)
        .expect_err("armed kill switch must abort the run");
    assert!(matches!(err, sqlbarber::GenerateError::Killed(_)), "{err}");

    let resumed = SqlBarber::new(&db, config)
        .resume(&dir, &target, CostType::Cardinality)
        .expect("resume under storm succeeds");
    assert_eq!(flatten(&baseline), flatten(&resumed), "workload diverged");
    assert_eq!(
        baseline.final_distance.to_bits(),
        resumed.final_distance.to_bits()
    );
    assert_eq!(
        baseline.resilience, resumed.resilience,
        "resilience ledger diverged — the snapshot lost LLM stack state"
    );
    assert_eq!(
        baseline.degradation, resumed.degradation,
        "degradation ledger diverged across kill/resume"
    );
    assert!(
        baseline.resilience.failures > 0,
        "the storm never fired; this test proved nothing"
    );
    assert_report_valid(&resumed);
    let _ = std::fs::remove_dir_all(&dir);
}
