//! Cross-crate determinism: the pipeline must produce bit-identical
//! output at any thread count. Parallelism only changes *when* probes are
//! planned, never *which* probes are requested or what they return — the
//! seed-split RNG scheme and order-preserving merges guarantee it. The
//! prepared-plan fast path is held to the same bar: turning it off with
//! `use_prepared: false` (the CLIs' `--no-prepared`) must not change a
//! single bit of the output either.

use sqlbarber::cost::CostType;
use sqlbarber::oracle::OracleStats;
use sqlbarber::{GenerationReport, SqlBarber, SqlBarberConfig};
use workload::redset::redset_template_specs;
use workload::{CostIntervals, TargetDistribution};

fn tpch() -> minidb::Database {
    minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
}

fn run(
    db: &minidb::Database,
    threads: usize,
    use_prepared: bool,
) -> (GenerationReport, OracleStats) {
    run_columnar(db, threads, use_prepared, true)
}

fn run_columnar(
    db: &minidb::Database,
    threads: usize,
    use_prepared: bool,
    use_columnar: bool,
) -> (GenerationReport, OracleStats) {
    let target = TargetDistribution::uniform(CostIntervals::new(0.0, 5000.0, 5), 80);
    let specs = redset_template_specs(3);
    let config = SqlBarberConfig {
        threads,
        use_prepared,
        use_columnar,
        ..SqlBarberConfig::fast_test()
    };
    let mut barber = SqlBarber::new(db, config);
    let report = barber
        .generate(&specs[..6], &target, CostType::Cardinality)
        .expect("generation succeeds");
    let stats = OracleStats {
        logical_probes: report.oracle_probes,
        physical_evals: report.oracle_physical_evals,
        cache_hits: report.oracle_cache_hits,
        prepared_hits: report.oracle_prepared_hits,
        prepared_misses: report.oracle_prepared_misses,
        evictions: report.oracle_evictions,
        scheduler_rounds: report.scheduler_rounds,
        scheduler_tasks: report.scheduler_tasks,
        scheduler_peak_tasks: report.scheduler_peak_tasks,
        scheduler_overadmissions: report.scheduler_overadmissions,
    };
    (report, stats)
}

/// The manifest JSON with its one wall-clock field removed — everything
/// else must be bit-identical across thread counts.
fn manifest_without_wallclock(r: &GenerationReport) -> serde_json::Value {
    let path = std::env::temp_dir().join(format!(
        "sqlbarber-determinism-{}-{}.json",
        std::process::id(),
        r.queries.len()
    ));
    r.write_manifest(&path).expect("manifest written");
    let text = std::fs::read_to_string(&path).expect("manifest readable");
    let _ = std::fs::remove_file(&path);
    let mut value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let serde_json::Value::Object(pairs) = &mut value else {
        panic!("manifest is not a JSON object");
    };
    let before = pairs.len();
    pairs.retain(|(key, _)| key != "elapsed_seconds");
    assert_eq!(before, pairs.len() + 1, "manifest records wall-clock exactly once");
    value
}

/// Exact (SQL, cost-bits) fingerprint of the generated workload.
fn flatten(r: &GenerationReport) -> Vec<(String, u64)> {
    r.queries.iter().map(|q| (q.sql.clone(), q.cost.to_bits())).collect()
}

#[test]
fn end_to_end_is_bit_identical_across_thread_counts() {
    // Full pipeline (profile → refine → scheduled BO) at 1, 2, and 8
    // threads: the workload, every counter, and the on-disk manifest
    // (minus wall-clock) must match the serial run bit for bit.
    let db = tpch();
    let (serial, serial_stats) = run(&db, 1, true);
    let serial_manifest = manifest_without_wallclock(&serial);
    assert!(serial_stats.logical_probes > 0, "oracle was never consulted");
    assert_eq!(
        serial_stats.cache_hits,
        serial_stats.logical_probes - serial_stats.physical_evals
    );
    assert!(
        serial_stats.prepared_hits + serial_stats.prepared_misses > 0,
        "prepared path never exercised"
    );
    assert!(serial_stats.scheduler_rounds > 0, "scheduler never ran a round");
    assert!(
        serial_stats.scheduler_tasks >= serial_stats.scheduler_rounds,
        "every round runs at least one task"
    );

    for threads in [2usize, 8] {
        let (parallel, parallel_stats) = run(&db, threads, true);
        assert_eq!(
            serial.final_distance.to_bits(),
            parallel.final_distance.to_bits(),
            "threads={threads}: final distance diverged: {} vs {}",
            serial.final_distance,
            parallel.final_distance
        );
        assert_eq!(
            flatten(&serial),
            flatten(&parallel),
            "threads={threads}: query sets diverged"
        );
        assert_eq!(
            serial.distribution, parallel.distribution,
            "threads={threads}: achieved histograms diverged"
        );
        assert_eq!(
            serial.evaluations, parallel.evaluations,
            "threads={threads}: budget accounting diverged"
        );
        assert_eq!(
            serial_stats, parallel_stats,
            "threads={threads}: oracle/scheduler accounting diverged"
        );
        assert_eq!(serial.skipped_intervals, parallel.skipped_intervals);
        assert_eq!(serial.n_refined_templates, parallel.n_refined_templates);
        assert_eq!(
            serial_manifest,
            manifest_without_wallclock(&parallel),
            "threads={threads}: manifests diverged"
        );
    }
}

#[test]
fn prepared_plans_are_an_invisible_optimization() {
    // Identical output with the prepared-plan fast path on and off, at
    // both thread counts. Only the *workload* must match: the prepared
    // counters are zero when disabled, and physical-eval counts may
    // legitimately differ because the rendered-SQL memo dedupes identical
    // statements across templates while binding keys are per-template.
    let db = tpch();
    for threads in [1usize, 4] {
        let (on, on_stats) = run(&db, threads, true);
        let (off, off_stats) = run(&db, threads, false);
        assert_eq!(
            on.final_distance.to_bits(),
            off.final_distance.to_bits(),
            "threads={threads}: distance diverged: {} vs {}",
            on.final_distance,
            off.final_distance
        );
        assert_eq!(
            flatten(&on),
            flatten(&off),
            "threads={threads}: query sets diverged"
        );
        assert_eq!(on.distribution, off.distribution, "threads={threads}");
        assert_eq!(on.evaluations, off.evaluations, "threads={threads}");
        assert_eq!(on.skipped_intervals, off.skipped_intervals);
        assert_eq!(on.n_refined_templates, off.n_refined_templates);
        assert_eq!(
            on_stats.logical_probes, off_stats.logical_probes,
            "threads={threads}: the fast path must not change which probes run"
        );
        assert!(on_stats.prepared_hits + on_stats.prepared_misses > 0);
        assert_eq!(
            off_stats.prepared_hits + off_stats.prepared_misses,
            0,
            "disabled path must not touch the binding-key memo"
        );
    }
}

#[test]
fn columnar_batching_is_an_invisible_optimization() {
    // Identical output with the columnar batch path on and off
    // (`--no-columnar`), at 1 and 4 threads. Unlike the prepared on/off
    // comparison, the columnar path promises *identical oracle
    // accounting* too — it memoizes the same binding keys, so every
    // counter and the on-disk manifest must match bit for bit.
    let db = tpch();
    for threads in [1usize, 4] {
        let (on, on_stats) = run_columnar(&db, threads, true, true);
        let (off, off_stats) = run_columnar(&db, threads, true, false);
        assert_eq!(
            on.final_distance.to_bits(),
            off.final_distance.to_bits(),
            "threads={threads}: distance diverged: {} vs {}",
            on.final_distance,
            off.final_distance
        );
        assert_eq!(
            flatten(&on),
            flatten(&off),
            "threads={threads}: query sets diverged"
        );
        assert_eq!(on.distribution, off.distribution, "threads={threads}");
        assert_eq!(on.evaluations, off.evaluations, "threads={threads}");
        assert_eq!(on.skipped_intervals, off.skipped_intervals);
        assert_eq!(on.n_refined_templates, off.n_refined_templates);
        assert_eq!(
            on_stats, off_stats,
            "threads={threads}: columnar batching must not change oracle accounting"
        );
        assert_eq!(
            manifest_without_wallclock(&on),
            manifest_without_wallclock(&off),
            "threads={threads}: manifests diverged"
        );
    }
}

#[test]
fn amplified_output_is_bit_identical_across_threads_and_shards() {
    // The amplification stage inherits the same bar: file bytes, the
    // manifest (minus wall-clock), the amplify accounting, and every
    // oracle counter must match the serial single-shard run bit for bit
    // at any `--threads N` and any `--amplify-shards K`. Shards are pure
    // speculation width — the flush barrier consumes candidate batches in
    // canonical order and discards the rest unseen.
    let db = tpch();
    let run_amplified = |threads: usize, shards: usize| {
        let path = std::env::temp_dir().join(format!(
            "sqlbarber-amplify-determinism-{}-t{threads}-s{shards}.sql",
            std::process::id(),
        ));
        let target = TargetDistribution::uniform(CostIntervals::new(0.0, 5000.0, 5), 80);
        let specs = redset_template_specs(3);
        let mut config = SqlBarberConfig {
            threads,
            ..SqlBarberConfig::fast_test()
        };
        config.amplify = Some(sqlbarber::AmplifyConfig {
            n: 4_000,
            shards,
            batch: 256,
            out: Some(path.clone()),
        });
        let mut barber = SqlBarber::new(&db, config);
        let report = barber
            .generate(&specs[..6], &target, CostType::Cardinality)
            .expect("generation succeeds");
        let bytes = std::fs::read(&path).expect("amplified file written");
        let _ = std::fs::remove_file(&path);
        (report, bytes)
    };

    let (serial, serial_bytes) = run_amplified(1, 1);
    let serial_manifest = manifest_without_wallclock(&serial);
    let serial_amplify = serial.amplify.clone().expect("amplify stage ran");
    assert_eq!(serial_amplify.requested, 4_000);
    assert_eq!(
        serial_amplify.emitted + serial_amplify.shortfall,
        serial_amplify.requested,
        "every requested query is accounted emitted or short"
    );
    assert_eq!(serial_amplify.oracle_misses, 0, "amplification bypasses the oracle");
    assert!(!serial_bytes.is_empty(), "amplified file has content");

    for (threads, shards) in [(2usize, 1usize), (4, 3), (8, 8)] {
        let (other, other_bytes) = run_amplified(threads, shards);
        assert_eq!(
            serial_bytes, other_bytes,
            "threads={threads} shards={shards}: amplified file bytes diverged"
        );
        assert_eq!(
            serial_amplify,
            other.amplify.clone().expect("amplify stage ran"),
            "threads={threads} shards={shards}: amplify accounting diverged"
        );
        assert_eq!(
            serial_manifest,
            manifest_without_wallclock(&other),
            "threads={threads} shards={shards}: manifests diverged"
        );
        assert_eq!(
            flatten(&serial),
            flatten(&other),
            "threads={threads} shards={shards}: BO query sets diverged"
        );
    }
}

#[test]
fn repeated_runs_on_one_database_are_reproducible() {
    // Two runs with the same seed and thread count must agree exactly —
    // the memo cache is per-run state, not hidden global state.
    let db = tpch();
    let (first, first_stats) = run(&db, 2, true);
    let (second, second_stats) = run(&db, 2, true);
    assert_eq!(first.final_distance.to_bits(), second.final_distance.to_bits());
    assert_eq!(first.queries.len(), second.queries.len());
    assert_eq!(first_stats, second_stats);
}
