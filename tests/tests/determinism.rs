//! Cross-crate determinism: the pipeline must produce bit-identical
//! output at any thread count. Parallelism only changes *when* probes are
//! planned, never *which* probes are requested or what they return — the
//! seed-split RNG scheme and order-preserving merges guarantee it.

use sqlbarber::cost::CostType;
use sqlbarber::oracle::OracleStats;
use sqlbarber::{GenerationReport, SqlBarber, SqlBarberConfig};
use workload::redset::redset_template_specs;
use workload::{CostIntervals, TargetDistribution};

fn tpch() -> minidb::Database {
    minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny())
}

fn run(db: &minidb::Database, threads: usize) -> (GenerationReport, OracleStats) {
    let target = TargetDistribution::uniform(CostIntervals::new(0.0, 5000.0, 5), 80);
    let specs = redset_template_specs(3);
    let config = SqlBarberConfig { threads, ..SqlBarberConfig::fast_test() };
    let mut barber = SqlBarber::new(db, config);
    let report = barber
        .generate(&specs[..6], &target, CostType::Cardinality)
        .expect("generation succeeds");
    let stats = OracleStats {
        logical_probes: report.oracle_probes,
        physical_evals: report.oracle_physical_evals,
        cache_hits: report.oracle_cache_hits,
    };
    (report, stats)
}

#[test]
fn end_to_end_is_bit_identical_across_thread_counts() {
    let db = tpch();
    let (serial, serial_stats) = run(&db, 1);
    let (parallel, parallel_stats) = run(&db, 4);

    assert_eq!(
        serial.final_distance.to_bits(),
        parallel.final_distance.to_bits(),
        "final distance diverged: {} vs {}",
        serial.final_distance,
        parallel.final_distance
    );
    let flatten = |r: &GenerationReport| -> Vec<(String, u64)> {
        r.queries.iter().map(|q| (q.sql.clone(), q.cost.to_bits())).collect()
    };
    assert_eq!(flatten(&serial), flatten(&parallel), "query sets diverged");
    assert_eq!(
        serial.distribution, parallel.distribution,
        "achieved histograms diverged"
    );
    assert_eq!(serial.evaluations, parallel.evaluations, "budget accounting diverged");
    assert_eq!(serial_stats, parallel_stats, "oracle accounting diverged");
    assert_eq!(serial.skipped_intervals, parallel.skipped_intervals);
    assert_eq!(serial.n_refined_templates, parallel.n_refined_templates);
    assert!(serial_stats.logical_probes > 0, "oracle was never consulted");
    assert_eq!(
        serial_stats.cache_hits,
        serial_stats.logical_probes - serial_stats.physical_evals
    );
}

#[test]
fn repeated_runs_on_one_database_are_reproducible() {
    // Two runs with the same seed and thread count must agree exactly —
    // the memo cache is per-run state, not hidden global state.
    let db = tpch();
    let (first, first_stats) = run(&db, 2);
    let (second, second_stats) = run(&db, 2);
    assert_eq!(first.final_distance.to_bits(), second.final_distance.to_bits());
    assert_eq!(first.queries.len(), second.queries.len());
    assert_eq!(first_stats, second_stats);
}
