//! Throwaway measurement: heap allocations per warm prepared-memo lookup.
//! (Used to record the before/after numbers for EXPERIMENTS.md.)
//!
//! Default mode probes one binding at a time; `--batch 256` (any size)
//! additionally measures the columnar batch path with a reused
//! [`ColumnarScratch`], reporting amortized allocations per probe;
//! `--amplify` measures the warm amplification emission loop (draw →
//! decode → columnar recost → render → stream) over one million emitted
//! queries, asserting 0.000 allocs/query — which simultaneously
//! demonstrates bounded memory at N = 1M (nothing proportional to the
//! workload is retained); `--exec-batch 256` measures the vectorized
//! executor (`PreparedExec::execute_batch`) warm path with a reused
//! [`ExecScratch`], asserting 0.000 allocs/probe in release builds
//! (debug builds run the per-row scalar cross-check, which allocates
//! by design).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlbarber::amplify::{Lane, PairContext, DEFAULT_BATCH};
use sqlbarber::oracle::{ColumnarScratch, CostOracle};
use sqlbarber::profiler::profile_template;
use sqlbarber::CostType;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;
static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: `Counting` is a stateless pass-through to the System allocator
// — it only bumps an atomic counter — so every GlobalAlloc invariant
// (layout fidelity, no unwinding, pointer provenance) is exactly
// System's.
unsafe impl GlobalAlloc for Counting {
    // SAFETY: same contract as `System.alloc`; callers pass a valid
    // nonzero-size layout, which is forwarded unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` comes from our caller, who upholds the
        // GlobalAlloc contract we share with System.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: same contract as `System.dealloc`; `ptr` must have come
    // from this allocator (which always delegates to System).
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by `System.alloc` via `alloc` above
        // and is returned with the same layout.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: Counting = Counting;

fn main() {
    let db = minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny());
    let oracle = CostOracle::new(&db, 1);
    let template = sqlkit::parse_template(
        "SELECT c.c_custkey FROM customer AS c WHERE c.c_mktsegment = {p_1} AND c.c_acctbal > {p_2}",
    )
    .unwrap();
    let space = sqlbarber::sampler::PlaceholderSpace::build(&db, &template);
    let handle = oracle.prepare(&template).unwrap();
    // Distinct bindings, costed once to warm the memo.
    let bindings: Vec<_> = (0..256)
        .map(|i| space.decode(&[(i % 5) as f64 / 5.0, (i as f64) / 256.0]))
        .collect();
    for b in &bindings {
        oracle.cost_prepared(&handle, b, CostType::Cardinality).unwrap();
    }
    // Measure: warm lookups only (every probe is a binding-key cache hit).
    const ROUNDS: u64 = 100;
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..ROUNDS {
        for b in &bindings {
            oracle.cost_prepared(&handle, b, CostType::Cardinality).unwrap();
        }
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    let per = (after - before) as f64 / (ROUNDS * bindings.len() as u64) as f64;
    println!("allocs per warm prepared lookup: {per:.2}");
    let stats = oracle.stats();
    println!("hits {} misses {}", stats.prepared_hits, stats.prepared_misses);

    // `--batch N`: amortized allocations per probe through the columnar
    // batch path, scratch reused across rounds (first warm batch sizes
    // the arenas; steady state should be ~0).
    let args: Vec<String> = std::env::args().skip(1).collect();
    let batch_size = args
        .iter()
        .position(|a| a == "--batch")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    if let Some(batch_size) = batch_size {
        let batch: Vec<_> = bindings.iter().take(batch_size).cloned().collect();
        let mut scratch = ColumnarScratch::new();
        // Warm call: grows the scratch arenas to this batch's size.
        oracle.cost_prepared_batch_columnar(&handle, &batch, CostType::Cardinality, &mut scratch);
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..ROUNDS {
            let results = oracle.cost_prepared_batch_columnar(
                &handle,
                &batch,
                CostType::Cardinality,
                &mut scratch,
            );
            assert_eq!(results.len(), batch.len());
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        let per = (after - before) as f64 / (ROUNDS * batch.len() as u64) as f64;
        println!("allocs per warm columnar batch probe (batch {}): {per:.3}", batch.len());
    }

    // `--exec-batch N`: amortized allocations per probe through the
    // vectorized executor, batch and scratch reused across rounds. The
    // zero-alloc assertion is release-only: debug builds cross-check
    // every batch row against scalar `Database::execute`, which
    // instantiates and materializes per row by design.
    let exec_batch_size = args
        .iter()
        .position(|a| a == "--exec-batch")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    if let Some(batch_size) = exec_batch_size {
        let template = sqlkit::parse_template(
            "SELECT l.l_orderkey FROM lineitem AS l \
             WHERE l.l_quantity > {p_1} AND l.l_extendedprice <= {p_2}",
        )
        .unwrap();
        let exec = minidb::PreparedExec::prepare(&db, &template);
        assert_eq!(exec.tier(), "columnar", "probe template must take the kernel tier");
        let rows: Vec<std::collections::HashMap<u32, sqlkit::Value>> = (0..batch_size)
            .map(|i| {
                [
                    (1u32, sqlkit::Value::Int((i % 50) as i64)),
                    (2u32, sqlkit::Value::Float(900.0 + i as f64 * 37.0)),
                ]
                .into_iter()
                .collect()
            })
            .collect();
        let batch = minidb::BindingBatch::from_rows(&[1, 2], &rows).unwrap();
        let mut scratch = minidb::ExecScratch::new();
        // Warm call: grows the selection vectors and result arena.
        exec.execute_batch(&db, &batch, &mut scratch).unwrap();
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..ROUNDS {
            let results = exec.execute_batch(&db, &batch, &mut scratch).unwrap();
            assert_eq!(results.len(), batch.len());
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        let per = (after - before) as f64 / (ROUNDS * batch.len() as u64) as f64;
        println!("allocs per warm exec-batch probe (batch {}): {per:.3}", batch.len());
        if cfg!(not(debug_assertions)) {
            assert!(per < 0.0005, "warm exec-batch loop allocated {per:.5}/probe");
        }
    }

    // `--amplify`: allocations per emitted query in the warm amplification
    // loop — one million queries drawn, recosted, rendered, and streamed
    // to a sink through per-batch scratch only. Numeric placeholders keep
    // decode alloc-free (string dimensions clone their MCV by design).
    if args.iter().any(|a| a == "--amplify") {
        let template = sqlkit::parse_template(
            "SELECT l.l_orderkey FROM lineitem AS l \
             WHERE l.l_quantity > {p_1} AND l.l_extendedprice <= {p_2}",
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let profiled = profile_template(&oracle, template, CostType::Cardinality, 64, &mut rng);
        let max = profiled.costs.iter().fold(0.0f64, |a, &b| a.max(b));
        let intervals = workload::CostIntervals::new(0.0, (max * 1.05).max(1.0), 5);
        // Fit against the densest interval so the accept rate is high.
        let mut conforming = [0usize; 5];
        for eval in &profiled.evaluations {
            if let Some(j) = intervals.interval_of(eval.value) {
                conforming[j] += 1;
            }
        }
        let interval = conforming
            .iter()
            .enumerate()
            .max_by_key(|(_, &n)| n)
            .map(|(j, _)| j)
            .unwrap();
        let handle = oracle.prepare(&profiled.template).unwrap();
        let ctx =
            PairContext::new(&profiled, handle, CostType::Cardinality, intervals, interval)
                .expect("densest interval has conforming probes");
        let mut lane = Lane::new();
        let mut writer = workload::StreamingSqlWriter::new(std::io::sink());
        let run_batch = |lane: &mut Lane,
                             writer: &mut workload::StreamingSqlWriter<std::io::Sink>,
                             b: u64| {
            lane.run(&db, &ctx, bayesopt::parallel::split_seed(9, b), DEFAULT_BATCH)
                .expect("recosts");
            let accepted = lane.accepts().len();
            writer
                .write_records(lane.accepted_chunk(accepted), accepted as u64)
                .expect("sink never fails");
            accepted as u64
        };
        // Warm-up: grow the lane arenas and the record string.
        let mut batch_index = 0u64;
        for _ in 0..4 {
            run_batch(&mut lane, &mut writer, batch_index);
            batch_index += 1;
        }
        const TARGET: u64 = 1_000_000;
        let mut emitted = 0u64;
        let before = ALLOCS.load(Ordering::Relaxed);
        while emitted < TARGET {
            emitted += run_batch(&mut lane, &mut writer, batch_index);
            batch_index += 1;
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        let per = (after - before) as f64 / emitted as f64;
        println!("allocs per warm amplified query ({emitted} emitted): {per:.3}");
        assert!(per < 0.0005, "warm amplification loop allocated {per:.5}/query");
    }
}
