//! Generation driven by *actual execution*, not optimizer estimates.
//!
//! Definition 2.10: "These cost metrics can be obtained by estimations
//! from the query optimizer or by actual execution." The paper's
//! evaluation uses `EXPLAIN` estimates; this example drives the whole
//! pipeline with measured wall-clock execution time instead — a noisy,
//! non-deterministic oracle, which exercises the robustness of profiling,
//! refinement, and the BO search.
//!
//! ```text
//! cargo run --release -p sqlbarber-examples --bin actual_execution
//! ```

use sqlbarber::{CostType, SqlBarber, SqlBarberConfig};
use workload::{CostIntervals, TargetDistribution};

fn main() {
    // Tiny scale: every profiling sample and search step executes for real.
    let db = minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny());

    let templates = vec![
        sqlkit::parse_template(
            "SELECT l.l_orderkey, l.l_extendedprice FROM lineitem AS l \
             WHERE l.l_extendedprice > {p_1}",
        )
        .unwrap(),
        sqlkit::parse_template(
            "SELECT o.o_orderpriority, COUNT(*) AS n FROM orders AS o \
             JOIN lineitem AS l ON l.l_orderkey = o.o_orderkey \
             WHERE l.l_quantity BETWEEN {p_1} AND {p_2} GROUP BY o.o_orderpriority",
        )
        .unwrap(),
    ];

    // Target: execution times (µs) spread over [0, 3 ms].
    let target =
        TargetDistribution::uniform(CostIntervals::new(0.0, 3_000.0, 6), 60);

    let mut barber = SqlBarber::new(&db, SqlBarberConfig::default());
    let report = barber
        .generate_from_templates(templates, &target, CostType::ExecutionTimeMicros)
        .expect("generation succeeded");

    println!("{}", report.summary());
    println!("\nexecution-time histogram (µs):");
    for (j, (t, d)) in report.target_counts.iter().zip(&report.distribution).enumerate() {
        let (lo, hi) = target.intervals.bounds(j);
        println!("  [{lo:>6.0}, {hi:>6.0})  target {t:>3.0}  got {d:>3.0}");
    }

    // Replay three queries and compare recorded vs fresh timings — wall
    // clock is noisy, so expect the interval, not the microsecond.
    println!("\nreplay check:");
    for query in report.queries.iter().take(3) {
        let parsed = sqlkit::parse_select(&query.sql).unwrap();
        let fresh = db.execute(&parsed).unwrap();
        println!(
            "  recorded {:>7.0}µs, replayed {:>7.0}µs, {} rows | {}",
            query.cost,
            fresh.elapsed.as_micros(),
            fresh.cardinality(),
            &query.sql[..query.sql.len().min(72)]
        );
    }
}
