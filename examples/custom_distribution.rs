//! Custom distributions and hand-written templates.
//!
//! SQLBarber "is not restricted to these specific distributions, and can
//! generate queries that follow any user-specified cost distribution"
//! (§1). This example targets a fully custom bimodal histogram, and also
//! shows the lower-level entry point where the user supplies their own SQL
//! templates and only the cost-aware query generator (§5) runs.
//!
//! ```text
//! cargo run --release -p sqlbarber-examples --bin custom_distribution
//! ```

use sqlbarber::{CostType, SqlBarber, SqlBarberConfig};
use workload::distribution::Shape;
use workload::{CostIntervals, TargetDistribution};

fn main() {
    let db = minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::default());

    // A fully custom target: cheap health-check queries plus a heavy
    // nightly-report mode around plan cost 8k, over a 12-interval grid.
    let intervals = CostIntervals::new(0.0, 9_600.0, 12);
    let target = TargetDistribution::from_shape(
        Shape::Bimodal {
            median: 700.0,
            sigma: 0.8,
            bump_center: 8_000.0,
            bump_sigma: 700.0,
            bump_mass: 0.35,
        },
        intervals,
        400,
    );
    println!("custom bimodal target: {:?}", target.counts);

    // Bring-your-own templates: skip the LLM template generator entirely
    // and let profiling + refinement + BO do the cost work.
    let templates = vec![
        sqlkit::parse_template(
            "SELECT l.l_orderkey, l.l_extendedprice FROM lineitem AS l \
             WHERE l.l_extendedprice > {p_1} AND l.l_quantity <= {p_2}",
        )
        .unwrap(),
        sqlkit::parse_template(
            "SELECT o.o_orderpriority, COUNT(*) AS n FROM orders AS o \
             JOIN customer AS c ON o.o_custkey = c.c_custkey \
             WHERE o.o_totalprice BETWEEN {p_1} AND {p_2} \
             GROUP BY o.o_orderpriority",
        )
        .unwrap(),
        sqlkit::parse_template(
            "SELECT p.p_brand, AVG(p.p_retailprice) AS avg_price FROM part AS p \
             WHERE p.p_size >= {p_1} GROUP BY p.p_brand",
        )
        .unwrap(),
    ];

    let mut barber = SqlBarber::new(&db, SqlBarberConfig::default());
    let report = barber
        .generate_from_templates(templates, &target, CostType::PlanCost)
        .expect("generation succeeded");

    println!("\n{}", report.summary());
    println!(
        "pool grew from 3 hand-written templates to {} after refinement",
        report.n_final_templates
    );
    println!("\nachieved histogram (■ = 5 queries):");
    for (j, (t, d)) in report.target_counts.iter().zip(&report.distribution).enumerate() {
        println!(
            "  {:<13} target {:>3.0} got {:>3.0} {}",
            target.intervals.label(j),
            t,
            d,
            "■".repeat((*d / 5.0).round() as usize)
        );
    }
    if !report.skipped_intervals.is_empty() {
        println!("skipped intervals: {:?}", report.skipped_intervals);
    }
}
