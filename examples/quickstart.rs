//! Quickstart: generate a small, cost-conforming SQL workload in ~a second.
//!
//! Demonstrates the end-to-end SQLBarber flow of the paper's Figure 2:
//! natural-language template specifications go in, a workload whose query
//! costs match a target distribution comes out.
//!
//! ```text
//! cargo run --release -p sqlbarber-examples --bin quickstart
//! ```

use sqlbarber::{CostType, SqlBarber, SqlBarberConfig};
use sqlkit::TemplateSpec;
use workload::{CostIntervals, TargetDistribution};

fn main() {
    // 1. A database. SQLBarber only needs `EXPLAIN`-style cost estimates
    //    and schema metadata, both provided by the bundled `minidb` engine
    //    with its synthetic TPC-H generator.
    let db = minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::default());
    println!("database: {} ({} tables)", db.name(), db.table_names().len());

    // 2. Template specifications (Definition 2.5): numeric constraints
    //    plus natural-language instructions — no hand-written SQL.
    let specs = vec![
        TemplateSpec::new(1)
            .with_tables(2)
            .with_joins(1)
            .with_aggregations(1)
            .with_nl_instruction("use the GROUP BY operator")
            .with_nl_instruction("have two predicate values"),
        TemplateSpec::new(2)
            .with_tables(1)
            .with_joins(0)
            .with_nl_instruction("include a nested subquery"),
        TemplateSpec::new(3).with_tables(3).with_joins(2).with_aggregations(2),
    ];

    // 3. A target cost distribution (Definition 2.12): 200 queries,
    //    uniformly spread over estimated cardinalities in [0, 10k].
    let target = TargetDistribution::uniform(CostIntervals::paper_default(10), 200);

    // 4. Generate.
    let mut barber = SqlBarber::new(&db, SqlBarberConfig::default());
    let report = barber
        .generate(&specs, &target, CostType::Cardinality)
        .expect("generation succeeded");

    println!("\n{}", report.summary());
    println!("\ntarget vs achieved per interval:");
    for (j, (t, d)) in report.target_counts.iter().zip(&report.distribution).enumerate() {
        println!("  [{:>5.0}, {:>5.0})  target {:>3}  got {:>3}", j as f64 * 1000.0,
                 (j + 1) as f64 * 1000.0, t, d);
    }

    println!("\nthree sample queries:");
    let stride = (report.queries.len() / 3).max(1);
    for query in report.queries.iter().step_by(stride).take(3) {
        println!("  -- estimated cardinality {:.0}\n  {}\n", query.cost, query.sql);
    }
    println!("template alignment accuracy: {:.0}%", report.alignment_accuracy * 100.0);
    println!(
        "LLM usage: {}K tokens (${:.2})",
        report.llm_usage.total_tokens() / 1000,
        report.llm_usage.cost_usd()
    );
}
