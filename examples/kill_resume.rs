//! Kill/resume chaos harness: prove crash-safe checkpointing against a
//! *real* process abort, not just an unwound error.
//!
//! The parent process re-executes itself once per kill point with
//! `SQLBARBER_KILL_AT` set. The child runs the pipeline with the chaos
//! switch in `abort` mode — at the chosen checkpoint boundary it calls
//! `std::process::abort()`, the hardest crash short of `kill -9`:
//! no destructors, no flushes, whatever the checkpoint layer already
//! fsynced is all that survives. The parent then resumes from the
//! snapshot directory and compares the recovered workload bit for bit
//! against an uninterrupted reference run.
//!
//! ```text
//! cargo run --release -p sqlbarber-examples --bin kill_resume
//! ```

use sqlbarber::{
    CheckpointConfig, CostType, GenerationReport, KillSwitch, SqlBarber,
    SqlBarberConfig,
};
use std::path::PathBuf;
use std::process::Command;
use workload::redset::redset_template_specs;
use workload::{CostIntervals, TargetDistribution};

const KILL_ENV: &str = "SQLBARBER_KILL_AT";
const DIR_ENV: &str = "SQLBARBER_CHECKPOINT_DIR";
const KILL_POINTS: [&str; 5] = [
    "after-templates",
    "after-profiling",
    "after-refine",
    "mid-search",
    "after-search",
];

fn target() -> TargetDistribution {
    TargetDistribution::uniform(CostIntervals::new(0.0, 5000.0, 5), 60)
}

fn config(checkpoint: Option<CheckpointConfig>) -> SqlBarberConfig {
    let mut config = SqlBarberConfig::fast_test();
    config.checkpoint = checkpoint;
    config
}

fn pipeline(db: &minidb::Database, checkpoint: Option<CheckpointConfig>,
            kill: Option<KillSwitch>) -> GenerationReport {
    let specs = redset_template_specs(3);
    let mut barber = SqlBarber::new(db, config(checkpoint));
    if let Some(kill) = kill {
        barber = barber.with_kill_switch(kill);
    }
    barber
        .generate(&specs[..4], &target(), CostType::Cardinality)
        .expect("generation succeeded")
}

/// Exact (SQL, cost-bits) fingerprint of a workload.
fn flatten(r: &GenerationReport) -> Vec<(String, u64)> {
    r.queries.iter().map(|q| (q.sql.clone(), q.cost.to_bits())).collect()
}

/// Child mode: run the pipeline and abort the process at the kill point.
fn child(point: &str, dir: PathBuf) -> ! {
    let db = minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny());
    let kill = KillSwitch::parse(&format!("{point}:abort"))
        .expect("valid kill point");
    // `every: 1` makes the mid-search boundary come due on the first
    // scheduler round regardless of how many rounds the search needs.
    let _ = pipeline(&db, Some(CheckpointConfig { dir, every: 1 }), Some(kill));
    // Reaching here means the abort never fired — fail loudly so the
    // parent does not mistake a full run for a recovered one.
    eprintln!("child survived kill point {point}; chaos switch never fired");
    std::process::exit(3)
}

fn main() {
    if let Ok(point) = std::env::var(KILL_ENV) {
        let dir = PathBuf::from(std::env::var(DIR_ENV).expect("checkpoint dir env"));
        child(&point, dir);
    }

    let exe = std::env::current_exe().expect("own path");
    let db = minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::tiny());
    println!("reference run (uninterrupted)…");
    let reference = pipeline(&db, None, None);
    let reference_flat = flatten(&reference);
    println!(
        "  {} queries, final distance {:.3}\n",
        reference.queries.len(),
        reference.final_distance
    );

    let mut failures = 0;
    for point in KILL_POINTS {
        let dir = std::env::temp_dir()
            .join(format!("sqlbarber-kill-resume-{}-{point}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        println!("kill at {point} (abort mode)…");
        let status = Command::new(&exe)
            .env(KILL_ENV, point)
            .env(DIR_ENV, &dir)
            .status()
            .expect("child process spawns");
        if status.success() || status.code() == Some(3) {
            eprintln!("  FAIL: child exited {status} without aborting");
            failures += 1;
            continue;
        }

        let snapshots = std::fs::read_dir(&dir)
            .map(|entries| entries.count())
            .unwrap_or(0);
        print!("  child died as planned ({snapshots} snapshot files); resuming… ");
        let resumed = SqlBarber::new(&db, config(Some(CheckpointConfig {
            dir: dir.clone(),
            every: 1,
        })))
        .resume(&dir, &target(), CostType::Cardinality)
        .expect("resume succeeds");

        if flatten(&resumed) == reference_flat
            && resumed.final_distance.to_bits() == reference.final_distance.to_bits()
        {
            println!("bit-identical ✔");
        } else {
            println!("DIVERGED ✘");
            failures += 1;
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    if failures > 0 {
        eprintln!("\n{failures} kill point(s) failed");
        std::process::exit(1);
    }
    println!("\nall {} kill points recovered bit-identically", KILL_POINTS.len());
}
