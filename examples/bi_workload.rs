//! Business-intelligence workload: "no joins but complex scalar
//! expressions".
//!
//! The paper's Example 2.6 motivates SQLBarber with a constraint no
//! existing benchmark supports: BI frontends such as Tableau emit queries
//! with structurally simple relational trees but heavy scalar expressions.
//! This example generates exactly that workload through the declarative
//! interface and verifies the structural guarantees on every template.
//!
//! ```text
//! cargo run --release -p sqlbarber-examples --bin bi_workload
//! ```

use sqlbarber::{CostType, SqlBarber, SqlBarberConfig};
use sqlkit::TemplateSpec;
use workload::{CostIntervals, TargetDistribution};

fn main() {
    let db = minidb::datagen::tpch::generate(minidb::datagen::tpch::TpchConfig::default());

    // Ten BI-style template specs, phrased the way a user would type them.
    let specs: Vec<TemplateSpec> = (1..=10)
        .map(|id| {
            TemplateSpec::new(id)
                .with_joins(0)
                .with_nl_instruction("the query must have no joins")
                .with_nl_instruction("project complex scalar expressions")
                .with_nl_instruction("use two predicate values")
        })
        .collect();

    // BI dashboards fire many cheap scans: skew the target low.
    let target = TargetDistribution::snowset_cost(CostIntervals::paper_default(10), 300);

    let mut barber = SqlBarber::new(&db, SqlBarberConfig::default());
    let report = barber
        .generate(&specs, &target, CostType::PlanCost)
        .expect("generation succeeded");

    println!("{}", report.summary());
    println!("\nseed templates honored the BI constraints:");
    println!(
        "  alignment accuracy = {:.0}% across {} templates",
        report.alignment_accuracy * 100.0,
        report.n_seed_templates
    );

    // Show the scalar-expression flavour of the generated queries.
    println!("\nsample BI queries:");
    for query in report.queries.iter().take(3) {
        println!("  -- plan cost {:.0}\n  {}\n", query.cost, query.sql);
    }

    // Structural audit of the final workload: parse every query back and
    // confirm the no-join constraint held end to end for seed-template
    // queries (refined templates may restructure — the paper constrains
    // seed templates, Definition 2.9).
    let mut no_join = 0usize;
    for query in &report.queries {
        let parsed = sqlkit::parse_select(&query.sql).expect("generated SQL parses");
        if parsed.joins.is_empty() {
            no_join += 1;
        }
    }
    println!(
        "workload audit: {}/{} queries are join-free",
        no_join,
        report.queries.len()
    );
}
