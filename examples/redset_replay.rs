//! Redset replay: regenerate a production-shaped workload from published
//! statistics.
//!
//! This is the paper's headline scenario (§3): real query text is private,
//! but Amazon Redshift published per-template profiles
//! (`num_tables_accessed`, `num_joins`, `num_aggregations`) and runtime
//! statistics. SQLBarber turns those into a synthetic workload whose
//! structure matches the template profiles and whose cost distribution
//! matches the published runtime histogram.
//!
//! ```text
//! cargo run --release -p sqlbarber-examples --bin redset_replay
//! ```

use sqlbarber::{CostType, SqlBarber, SqlBarberConfig};
use workload::redset::{redset_template_specs, DEFAULT_SEED};

fn main() {
    // The paper uses IMDB as the substrate database for this workload.
    let db = minidb::datagen::imdb::generate(minidb::datagen::imdb::ImdbConfig::default());

    // 24 template specifications with Redset annotations + NL instructions.
    let specs = redset_template_specs(DEFAULT_SEED);
    println!("replaying {} Redset template profiles:", specs.len());
    for spec in specs.iter().take(5) {
        println!(
            "  template {:>2}: tables={} joins={} aggs={} instructions={:?}",
            spec.id,
            spec.num_tables.unwrap(),
            spec.num_joins.unwrap(),
            spec.num_aggregations.unwrap(),
            spec.instructions
        );
    }
    println!("  …");

    // The Redset execution-time distribution (Table 1, Redset_Cost_Medium).
    let bench = workload::benchmark_by_name("Redset_Cost_Medium").expect("registered");
    let target = bench.target();

    let mut barber = SqlBarber::new(&db, SqlBarberConfig::default());
    let report = barber
        .generate(&specs, &target, CostType::PlanCost)
        .expect("generation succeeded");

    println!("\n{}", report.summary());
    println!("\nrewrite loop (Algorithm 1) convergence:");
    for (attempt, (s, x)) in report
        .rewrite_stats
        .spec_correct
        .iter()
        .zip(&report.rewrite_stats.syntax_correct)
        .enumerate()
    {
        println!("  attempt {attempt}: {s}/24 spec-correct, {x}/24 executable");
    }

    println!("\ncost histogram (■ = 20 queries):");
    for (j, (t, d)) in report.target_counts.iter().zip(&report.distribution).enumerate() {
        let bar = "■".repeat((*d / 20.0).round() as usize);
        println!(
            "  {:<12} target {:>4.0} got {:>4.0} {bar}",
            target.intervals.label(j),
            t,
            d
        );
    }
}
